package sim

import (
	"fmt"

	"avfs/internal/chip"
)

// EventKind classifies a machine event.
type EventKind int

const (
	// EvSubmit: a process was submitted.
	EvSubmit EventKind = iota
	// EvPlace: a pending process was placed on cores.
	EvPlace
	// EvMigrate: a running process moved to new cores.
	EvMigrate
	// EvFinish: a process completed.
	EvFinish
	// EvVoltage: the PCP voltage changed.
	EvVoltage
	// EvFreq: a PMD frequency changed.
	EvFreq
	// EvEmergency: the programmed voltage fell below the requirement.
	EvEmergency
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvSubmit:
		return "submit"
	case EvPlace:
		return "place"
	case EvMigrate:
		return "migrate"
	case EvFinish:
		return "finish"
	case EvVoltage:
		return "voltage"
	case EvFreq:
		return "freq"
	case EvEmergency:
		return "emergency"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one entry of the machine's event log.
type Event struct {
	At   float64
	Kind EventKind
	// Proc is the process ID for lifecycle events, -1 otherwise.
	Proc int
	// Detail is a human-readable summary.
	Detail string
}

// String renders the event as a log line.
func (e Event) String() string {
	if e.Proc >= 0 {
		return fmt.Sprintf("%9.3fs %-9s proc=%d %s", e.At, e.Kind, e.Proc, e.Detail)
	}
	return fmt.Sprintf("%9.3fs %-9s %s", e.At, e.Kind, e.Detail)
}

// eventLog is a bounded append-only log; when full, the oldest half is
// dropped (long evaluations would otherwise accumulate millions of freq
// events).
type eventLog struct {
	events  []Event
	dropped int
	limit   int
}

const defaultEventLimit = 100_000

func (l *eventLog) add(e Event) {
	if l.limit == 0 {
		l.limit = defaultEventLimit
	}
	if len(l.events) >= l.limit {
		half := len(l.events) / 2
		l.dropped += half
		l.events = append(l.events[:0], l.events[half:]...)
	}
	l.events = append(l.events, e)
}

// EnableEventLog turns on structured event recording (off by default;
// recording costs allocations on hot paths). Existing history starts from
// this call.
func (m *Machine) EnableEventLog() {
	if m.log != nil {
		return
	}
	m.log = &eventLog{}
	m.seedVFMirrors()
}

// Subscribe registers a callback invoked synchronously for every event
// from now on, whether or not the bounded log is enabled — telemetry tails
// the stream without copying (or being limited by) the log. Subscribing
// turns event generation on.
func (m *Machine) Subscribe(fn func(Event)) {
	m.subs = append(m.subs, fn)
	m.seedVFMirrors()
}

// eventsOn reports whether events are generated at all.
func (m *Machine) eventsOn() bool { return m.log != nil || len(m.subs) > 0 }

// seedVFMirrors initializes the V/F change mirrors (once) so only future
// changes produce events.
func (m *Machine) seedVFMirrors() {
	if m.lastF != nil {
		return
	}
	m.lastV = m.Chip.Voltage()
	m.lastF = make([]chip.MHz, m.Spec.PMDs())
	for p := range m.lastF {
		m.lastF[p] = m.Chip.PMDFreq(chip.PMDID(p))
	}
	m.evGen, m.evValid = m.Chip.Generation(), true
}

// Events returns the recorded events (nil when the log is disabled).
func (m *Machine) Events() []Event {
	if m.log == nil {
		return nil
	}
	return m.log.events
}

// EventsDropped reports how many old events were discarded by the bound.
func (m *Machine) EventsDropped() int {
	if m.log == nil {
		return 0
	}
	return m.log.dropped
}

// logEvent records an event when the log or any subscriber is active.
func (m *Machine) logEvent(kind EventKind, proc int, format string, args ...any) {
	if !m.eventsOn() {
		return
	}
	e := Event{At: m.now, Kind: kind, Proc: proc, Detail: fmt.Sprintf(format, args...)}
	if m.log != nil {
		m.log.add(e)
	}
	for _, fn := range m.subs {
		fn(e)
	}
}

// coresString renders a core list compactly.
func coresString(cores []chip.CoreID) string {
	return fmt.Sprint(cores)
}
