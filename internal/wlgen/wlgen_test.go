package wlgen

import (
	"testing"
	"testing/quick"

	"avfs/internal/chip"
	"avfs/internal/workload"
)

func TestDeterministicBySeed(t *testing.T) {
	s := chip.XGene3Spec()
	a := Generate(s, Config{Duration: 1200}, 7)
	b := Generate(s, Config{Duration: 1200}, 7)
	if len(a.Arrivals) != len(b.Arrivals) {
		t.Fatalf("same seed produced %d vs %d arrivals", len(a.Arrivals), len(b.Arrivals))
	}
	for i := range a.Arrivals {
		if a.Arrivals[i] != b.Arrivals[i] {
			t.Fatalf("arrival %d differs", i)
		}
	}
	c := Generate(s, Config{Duration: 1200}, 8)
	if len(c.Arrivals) == len(a.Arrivals) {
		same := true
		for i := range c.Arrivals {
			if c.Arrivals[i] != a.Arrivals[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestArrivalsSortedAndInRange(t *testing.T) {
	s := chip.XGene2Spec()
	w := Generate(s, Config{Duration: 1800}, 3)
	if len(w.Arrivals) == 0 {
		t.Fatal("no arrivals generated")
	}
	prev := -1.0
	for _, a := range w.Arrivals {
		if a.At < prev {
			t.Fatal("arrivals not sorted")
		}
		prev = a.At
		if a.At < 0 || a.At >= w.Duration {
			t.Errorf("arrival at %.1f outside [0,%g)", a.At, w.Duration)
		}
		if a.Threads < 1 || a.Threads > s.Cores {
			t.Errorf("arrival thread count %d", a.Threads)
		}
		if !a.Bench.Parallel && a.Threads != 1 {
			t.Errorf("%s: single-threaded program with %d threads", a.Bench.Name, a.Threads)
		}
	}
}

func TestPoolMembership(t *testing.T) {
	// Only SPEC CPU2006 and NPB programs (Sec. VI-B's 35-program pool).
	w := Generate(chip.XGene3Spec(), Config{Duration: 3600}, 1)
	for _, a := range w.Arrivals {
		if a.Bench.Suite == workload.PARSEC {
			t.Fatalf("PARSEC program %s in the generator pool", a.Bench.Name)
		}
	}
}

// TestConcurrencyCapByConstruction replays the expected-occupancy
// bookkeeping: at no instant may the scheduled thread demand (using the
// generator's own runtime estimates) exceed the core count.
func TestConcurrencyCapByConstruction(t *testing.T) {
	for _, s := range []*chip.Spec{chip.XGene2Spec(), chip.XGene3Spec()} {
		w := Generate(s, Config{Duration: 3600}, 42)
		type lease struct {
			start, end float64
			threads    int
		}
		var leases []lease
		maxGHz := s.MaxFreq.GHz()
		for _, a := range w.Arrivals {
			rt := a.Bench.SoloRuntime(maxGHz)
			if a.Bench.Parallel {
				rt = rt*a.Bench.SerialFrac + rt*(1-a.Bench.SerialFrac)/float64(a.Threads)
			}
			leases = append(leases, lease{a.At, a.At + rt*1.25, a.Threads})
		}
		for _, probe := range leases {
			busy := 0
			for _, l := range leases {
				if l.start <= probe.start && l.end > probe.start {
					busy += l.threads
				}
			}
			if busy > s.Cores {
				t.Fatalf("%s: %d threads scheduled at t=%.1f (cap %d)", s.Name, busy, probe.start, s.Cores)
			}
		}
	}
}

func TestPhasesProduceIdleGaps(t *testing.T) {
	w := Generate(chip.XGene3Spec(), Config{Duration: 3600}, 42)
	// The phase cycle contains an idle phase: there must be at least one
	// inter-arrival gap of 60+ seconds.
	widest := 0.0
	for i := 1; i < len(w.Arrivals); i++ {
		if gap := w.Arrivals[i].At - w.Arrivals[i-1].At; gap > widest {
			widest = gap
		}
	}
	if widest < 60 {
		t.Errorf("widest arrival gap %.1fs; expected an idle period", widest)
	}
}

func TestWorkloadSummaries(t *testing.T) {
	w := Generate(chip.XGene3Spec(), Config{Duration: 3600}, 5)
	if w.TotalProcesses() != len(w.Arrivals) {
		t.Error("TotalProcesses mismatch")
	}
	if w.TotalThreads() < w.TotalProcesses() {
		t.Error("TotalThreads must be >= TotalProcesses")
	}
	share := w.MemoryIntensiveShare()
	if share <= 0.2 || share >= 0.9 {
		t.Errorf("memory-intensive share %.2f implausible for the mixed pool", share)
	}
	var empty Workload
	if empty.MemoryIntensiveShare() != 0 {
		t.Error("empty workload share must be 0")
	}
}

func TestDefaultsApplied(t *testing.T) {
	w := Generate(chip.XGene3Spec(), Config{}, 9)
	if w.Duration != 3600 {
		t.Errorf("default duration %.0f, want 3600 (the paper's 1-hour runs)", w.Duration)
	}
	if w.MaxCores != 32 {
		t.Errorf("MaxCores = %d", w.MaxCores)
	}
}

func TestCapPropertyAcrossSeeds(t *testing.T) {
	s := chip.XGene2Spec()
	f := func(seed int64) bool {
		w := Generate(s, Config{Duration: 900}, seed)
		for _, a := range w.Arrivals {
			if a.Threads > s.Cores || a.Threads < 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPhaseKindStrings(t *testing.T) {
	for k, want := range map[PhaseKind]string{
		Heavy: "heavy", Average: "average", Light: "light", Idle: "idle",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Heavy.targetOccupancy() <= Average.targetOccupancy() ||
		Average.targetOccupancy() <= Light.targetOccupancy() ||
		Idle.targetOccupancy() != 0 {
		t.Error("phase occupancy ordering")
	}
}
