package wlgen_test

import (
	"fmt"

	"avfs/internal/chip"
	"avfs/internal/wlgen"
)

// A generated workload is a reproducible arrival schedule drawn from the
// paper's 35-program pool, respecting the core-count concurrency cap.
func ExampleGenerate() {
	wl := wlgen.Generate(chip.XGene3Spec(), wlgen.Config{Duration: 1800}, 42)
	fmt.Println("duration:", wl.Duration, "seconds")
	fmt.Println("cap:", wl.MaxCores, "cores")
	fmt.Println("deterministic:", wlgen.Generate(chip.XGene3Spec(), wlgen.Config{Duration: 1800}, 42).TotalProcesses() == wl.TotalProcesses())
	first := wl.Arrivals[0]
	fmt.Printf("first arrival: %s (%d thread) at t=%.1fs\n", first.Bench.Name, first.Threads, first.At)
	// Output:
	// duration: 1800 seconds
	// cap: 32 cores
	// deterministic: true
	// first arrival: lbm (1 thread) at t=0.8s
}
