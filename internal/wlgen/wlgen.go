// Package wlgen implements the paper's "workload generator" (Sec. VI-B):
// it builds a typical server workload of configurable duration by randomly
// drawing programs from the 35-program pool (29 SPEC CPU2006 + 6 NPB) and
// randomly scheduling their invocation times, producing heavy, average and
// light load phases plus a few idle periods, while guaranteeing that the
// number of active processes never exceeds the machine's core count.
//
// A generated workload is a plain arrival schedule, so the same sequence
// can be replayed under different system configurations (Baseline, Safe
// Vmin, Placement, Optimal) for a fair comparison.
package wlgen

import (
	"fmt"
	"math/rand"
	"sort"

	"avfs/internal/chip"
	"avfs/internal/workload"
)

// Arrival is one scheduled program invocation.
type Arrival struct {
	// At is the invocation time in seconds from the workload start.
	At float64
	// Bench is the program to run.
	Bench *workload.Benchmark
	// Threads is the process's thread count (1 for SPEC programs).
	Threads int
}

// Workload is a reproducible arrival schedule.
type Workload struct {
	// Seed regenerates the schedule.
	Seed int64
	// Duration is the span over which arrivals were generated; the
	// tail processes may finish after it.
	Duration float64
	// MaxCores is the concurrency cap the schedule respects.
	MaxCores int
	// Arrivals are sorted by At.
	Arrivals []Arrival
}

// PhaseKind labels the load phases of the generated timeline.
type PhaseKind int

const (
	// Heavy pushes the machine toward full occupancy.
	Heavy PhaseKind = iota
	// Average targets about half occupancy.
	Average
	// Light targets low occupancy.
	Light
	// Idle submits nothing.
	Idle
)

// String names the phase.
func (k PhaseKind) String() string {
	switch k {
	case Heavy:
		return "heavy"
	case Average:
		return "average"
	case Light:
		return "light"
	case Idle:
		return "idle"
	default:
		return fmt.Sprintf("PhaseKind(%d)", int(k))
	}
}

// targetOccupancy returns the fraction of cores a phase aims to keep busy.
func (k PhaseKind) targetOccupancy() float64 {
	switch k {
	case Heavy:
		return 0.88
	case Average:
		return 0.50
	case Light:
		return 0.20
	default:
		return 0
	}
}

// Config tunes the generator; the zero value is completed with defaults.
type Config struct {
	// Duration of the workload in seconds (default 3600 — the paper's
	// 1-hour runs).
	Duration float64
	// MeanPhaseSeconds is the average load-phase length (default 300).
	MeanPhaseSeconds float64
	// MeanGapSeconds is the average inter-arrival gap inside a phase
	// before occupancy control (default 6).
	MeanGapSeconds float64
}

func (c Config) withDefaults() Config {
	if c.Duration <= 0 {
		c.Duration = 3600
	}
	if c.MeanPhaseSeconds <= 0 {
		c.MeanPhaseSeconds = 300
	}
	if c.MeanGapSeconds <= 0 {
		c.MeanGapSeconds = 6
	}
	return c
}

// phaseCycle is the repeating phase pattern; the RNG perturbs durations,
// so different seeds produce different timelines while every seed still
// contains heavy, average, light and idle periods (Fig. 15's shape).
var phaseCycle = []PhaseKind{Average, Heavy, Light, Average, Heavy, Idle, Light, Average}

// Generate builds the workload for a chip with the given seed.
func Generate(spec *chip.Spec, cfg Config, seed int64) *Workload {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	pool := workload.GeneratorPool()
	w := &Workload{Seed: seed, Duration: cfg.Duration, MaxCores: spec.Cores}

	// Expected occupancy bookkeeping: (endTime, threads) of every
	// arrival already emitted, using nominal solo runtimes as the
	// estimate. This is what lets the generator guarantee the
	// ≤ MaxCores invariant by construction.
	type lease struct {
		end     float64
		threads int
	}
	var leases []lease
	busyAt := func(t float64) int {
		n := 0
		for _, l := range leases {
			if l.end > t {
				n += l.threads
			}
		}
		return n
	}

	maxGHz := spec.MaxFreq.GHz()
	phase := 0
	phaseEnd := 0.0
	var kind PhaseKind
	for t := 0.0; t < cfg.Duration; {
		if t >= phaseEnd {
			kind = phaseCycle[phase%len(phaseCycle)]
			phase++
			// Durations vary ±50% around the mean; idle phases are
			// shorter.
			mean := cfg.MeanPhaseSeconds
			if kind == Idle {
				mean /= 3
			}
			phaseEnd = t + mean*(0.5+rng.Float64())
		}
		// Advance by an exponential inter-arrival gap.
		gap := rng.ExpFloat64() * cfg.MeanGapSeconds
		if gap < 0.5 {
			gap = 0.5
		}
		t += gap
		if t >= cfg.Duration {
			break
		}
		if kind == Idle {
			continue
		}
		target := int(kind.targetOccupancy() * float64(spec.Cores))
		b := pool[rng.Intn(len(pool))]
		threads := 1
		if b.Parallel {
			threads = parallelThreads(spec, rng)
		}
		busy := busyAt(t)
		if busy+threads > target || busy+threads > spec.Cores {
			continue // occupancy control: skip this draw
		}
		runtime := b.SoloRuntime(maxGHz)
		if b.Parallel {
			// Parallel work divides across threads (rough estimate
			// is fine — it only steers expected occupancy).
			runtime = runtime*b.SerialFrac + runtime*(1-b.SerialFrac)/float64(threads)
		}
		// Real runs are slower than the solo estimate (contention,
		// reduced frequency); leave 25% headroom so the cap holds.
		leases = append(leases, lease{end: t + runtime*1.25, threads: threads})
		w.Arrivals = append(w.Arrivals, Arrival{At: t, Bench: b, Threads: threads})
	}
	sort.Slice(w.Arrivals, func(i, j int) bool { return w.Arrivals[i].At < w.Arrivals[j].At })
	return w
}

// parallelThreads draws a thread count for a parallel program: 2 or 4 on
// the 8-core X-Gene 2; 2, 4 or 8 on the 32-core X-Gene 3.
func parallelThreads(spec *chip.Spec, rng *rand.Rand) int {
	if spec.Cores >= 32 {
		return []int{2, 4, 8}[rng.Intn(3)]
	}
	return []int{2, 4}[rng.Intn(2)]
}

// TotalProcesses returns the number of arrivals.
func (w *Workload) TotalProcesses() int { return len(w.Arrivals) }

// TotalThreads returns the summed thread demand.
func (w *Workload) TotalThreads() int {
	n := 0
	for _, a := range w.Arrivals {
		n += a.Threads
	}
	return n
}

// MemoryIntensiveShare returns the fraction of arrivals whose program is
// memory-intensive per the catalog ground truth.
func (w *Workload) MemoryIntensiveShare() float64 {
	if len(w.Arrivals) == 0 {
		return 0
	}
	n := 0
	for _, a := range w.Arrivals {
		if a.Bench.MemoryIntensive() {
			n++
		}
	}
	return float64(n) / float64(len(w.Arrivals))
}
