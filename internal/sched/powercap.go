package sched

import (
	"fmt"

	"avfs/internal/chip"
	"avfs/internal/sim"
)

// PowerCap is a RAPL-style power-capping governor (the paper's Sec. I
// motivation: capping peak power through power-performance knobs such as
// DVFS). It samples the chip's power and walks every busy PMD's frequency
// down one CPPC step while the budget is exceeded, back up while there is
// headroom — trading performance for a power ceiling, with voltage left
// untouched (the knob the X-Gene firmware exposes).
//
// It composes with the default placer (cap + placement ≈ a capped
// Baseline) and serves as the comparison substrate for studies of capping
// versus the paper's efficiency-first daemon.
type PowerCap struct {
	M *sim.Machine
	// BudgetW is the power ceiling in watts.
	BudgetW float64
	// SamplePeriod is the controller's evaluation interval in seconds.
	SamplePeriod float64
	// Headroom is the fraction of the budget below which the governor
	// raises frequency again (hysteresis; default 0.92).
	Headroom float64

	nextSample float64
	throttles  int
	boosts     int
}

// NewPowerCap creates the governor with RAPL-like defaults (10 ms control
// loop).
func NewPowerCap(m *sim.Machine, budgetW float64) *PowerCap {
	if budgetW <= 0 {
		panic("sched: power budget must be positive")
	}
	return &PowerCap{M: m, BudgetW: budgetW, SamplePeriod: 0.01, Headroom: 0.92}
}

// Attach hooks the governor (and the default placer) onto the machine.
// The tick boundary is the governor's next sample instant (immediate while
// processes await placement), so steady spans between control-loop
// evaluations can be coalesced.
func (g *PowerCap) Attach() {
	placer := &DefaultPlacer{M: g.M}
	g.M.OnTickBounded(func(*sim.Machine, int) {
		placer.PlacePending()
		g.Tick()
	}, func() float64 {
		if g.M.PendingCount() > 0 {
			return 0
		}
		return g.nextSample
	})
}

// Throttles returns how many down-steps the controller issued.
func (g *PowerCap) Throttles() int { return g.throttles }

// Boosts returns how many up-steps the controller issued.
func (g *PowerCap) Boosts() int { return g.boosts }

// Tick runs one control-loop evaluation if the sample period elapsed.
func (g *PowerCap) Tick() {
	now := g.M.Now()
	if now+1e-12 < g.nextSample {
		return
	}
	g.nextSample = now + g.SamplePeriod
	p := g.M.LastPower()
	switch {
	case p > g.BudgetW:
		g.step(-1)
		g.throttles++
	case p < g.BudgetW*g.Headroom:
		if g.step(+1) {
			g.boosts++
		}
	}
}

// step moves every busy PMD one CPPC frequency step in the given
// direction; it reports whether any PMD actually changed.
func (g *PowerCap) step(dir int) bool {
	spec := g.M.Spec
	changed := false
	for pmd := 0; pmd < spec.PMDs(); pmd++ {
		id := chip.PMDID(pmd)
		c0, c1 := spec.CoresOf(id)
		if g.M.ThreadOn(c0) == nil && g.M.ThreadOn(c1) == nil {
			continue
		}
		cur := g.M.Chip.PMDFreq(id)
		next := spec.ClampFreq(cur + chip.MHz(dir)*spec.FreqStep)
		if next != cur {
			g.M.Chip.SetPMDFreq(id, next)
			changed = true
		}
	}
	return changed
}

// String describes the governor.
func (g *PowerCap) String() string {
	return fmt.Sprintf("powercap(%.1fW, %.0fms loop)", g.BudgetW, 1000*g.SamplePeriod)
}
