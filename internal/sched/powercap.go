package sched

import (
	"fmt"
	"math"

	"avfs/internal/chip"
	"avfs/internal/sim"
)

// PowerCap is a RAPL-style power-capping governor (the paper's Sec. I
// motivation: capping peak power through power-performance knobs such as
// DVFS). It samples the chip's power and walks every busy PMD's frequency
// down one CPPC step while the budget is exceeded, back up while there is
// headroom — trading performance for a power ceiling, with voltage left
// untouched (the knob the X-Gene firmware exposes).
//
// It composes with the default placer (cap + placement ≈ a capped
// Baseline) and serves as the comparison substrate for studies of capping
// versus the paper's efficiency-first daemon.
type PowerCap struct {
	M *sim.Machine
	// BudgetW is the power ceiling in watts.
	BudgetW float64
	// SamplePeriod is the controller's evaluation interval in seconds.
	SamplePeriod float64
	// Headroom is the fraction of the budget below which the governor
	// raises frequency again (hysteresis; default 0.92).
	Headroom float64

	nextSample float64
	throttles  int
	boosts     int
	disabled   bool
	// composed is set by AttachGovernor: another policy stack owns
	// frequency, so boosts may only undo this governor's own throttles.
	composed bool
	// restore tracks, per PMD the governor throttled in composed mode,
	// the frequency to restore to (Want) and the last value this
	// governor wrote (Set). A Set that no longer matches the chip means
	// the owning policy rewrote the PMD; the claim is dropped.
	restore map[chip.PMDID]RestoreTarget
}

// RestoreTarget is one composed-mode throttle claim (serialized with
// PowerCapState so a migrated session boosts back identically).
type RestoreTarget struct {
	WantMHz chip.MHz `json:"want_mhz"`
	SetMHz  chip.MHz `json:"set_mhz"`
}

// NewPowerCap creates the governor with RAPL-like defaults (10 ms control
// loop).
func NewPowerCap(m *sim.Machine, budgetW float64) *PowerCap {
	if budgetW <= 0 {
		panic("sched: power budget must be positive")
	}
	return &PowerCap{M: m, BudgetW: budgetW, SamplePeriod: 0.01, Headroom: 0.92}
}

// Attach hooks the governor (and the default placer) onto the machine.
// The tick boundary is the governor's next sample instant (immediate while
// processes await placement), so steady spans between control-loop
// evaluations can be coalesced.
func (g *PowerCap) Attach() {
	placer := &DefaultPlacer{M: g.M}
	g.M.OnTickBounded(func(*sim.Machine, int) {
		placer.PlacePending()
		if !g.disabled {
			g.Tick()
		}
	}, func() float64 {
		if g.M.PendingCount() > 0 {
			return 0
		}
		if g.disabled {
			return math.Inf(1)
		}
		return g.nextSample
	})
}

// AttachGovernor hooks only the capping control loop onto the machine —
// no placer — so the cap composes with an already-attached policy stack
// (the daemon or Baseline owns placement). While disabled the hook is
// inert and reports no tick boundary, so steady-state coalescing is
// unaffected; the fleet uses this to retune or lift a session's cap
// without rebuilding the session.
func (g *PowerCap) AttachGovernor() {
	g.composed = true
	if g.restore == nil {
		g.restore = map[chip.PMDID]RestoreTarget{}
	}
	g.M.OnTickBounded(func(*sim.Machine, int) {
		if !g.disabled {
			g.Tick()
		}
	}, func() float64 {
		if g.disabled {
			return math.Inf(1)
		}
		return g.nextSample
	})
}

// SetEnabled turns the control loop on or off without detaching its
// hook (machines have no hook removal; a disabled governor is inert).
func (g *PowerCap) SetEnabled(on bool) { g.disabled = !on }

// Enabled reports whether the control loop is live.
func (g *PowerCap) Enabled() bool { return !g.disabled }

// SetBudget retunes the ceiling; non-positive budgets are ignored (use
// SetEnabled(false) to lift the cap).
func (g *PowerCap) SetBudget(w float64) {
	if w > 0 {
		g.BudgetW = w
	}
}

// PowerCapState is the serializable controller state, captured alongside
// the machine so a snapshot of a capped session replays bit-identically
// (the governor's sample phase and hysteresis counters survive the
// move).
type PowerCapState struct {
	BudgetW      float64 `json:"budget_watts"`
	SamplePeriod float64 `json:"sample_period"`
	Headroom     float64 `json:"headroom"`
	NextSample   float64 `json:"next_sample"`
	Throttles    int     `json:"throttles"`
	Boosts       int     `json:"boosts"`
	Disabled     bool    `json:"disabled,omitempty"`
	// Restore carries the composed-mode throttle claims (JSON object
	// keys sort, so the snapshot bytes stay content-addressable).
	Restore map[chip.PMDID]RestoreTarget `json:"restore,omitempty"`
}

// CaptureState snapshots the controller.
func (g *PowerCap) CaptureState() PowerCapState {
	return PowerCapState{
		BudgetW:      g.BudgetW,
		SamplePeriod: g.SamplePeriod,
		Headroom:     g.Headroom,
		NextSample:   g.nextSample,
		Throttles:    g.throttles,
		Boosts:       g.boosts,
		Disabled:     g.disabled,
		Restore:      cloneRestore(g.restore),
	}
}

func cloneRestore(in map[chip.PMDID]RestoreTarget) map[chip.PMDID]RestoreTarget {
	if len(in) == 0 {
		return nil
	}
	out := make(map[chip.PMDID]RestoreTarget, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}

// RestorePowerCap rebuilds a governor from captured state on a restored
// machine. The caller still chooses how to hook it (Attach or
// AttachGovernor), mirroring how it was attached originally.
func RestorePowerCap(m *sim.Machine, st PowerCapState) *PowerCap {
	g := NewPowerCap(m, math.Max(st.BudgetW, 1e-9))
	if st.SamplePeriod > 0 {
		g.SamplePeriod = st.SamplePeriod
	}
	if st.Headroom > 0 {
		g.Headroom = st.Headroom
	}
	g.nextSample = st.NextSample
	g.throttles = st.Throttles
	g.boosts = st.Boosts
	g.disabled = st.Disabled
	g.restore = cloneRestore(st.Restore)
	return g
}

// Throttles returns how many down-steps the controller issued.
func (g *PowerCap) Throttles() int { return g.throttles }

// Boosts returns how many up-steps the controller issued.
func (g *PowerCap) Boosts() int { return g.boosts }

// Tick runs one control-loop evaluation if the sample period elapsed.
func (g *PowerCap) Tick() {
	now := g.M.Now()
	if now+1e-12 < g.nextSample {
		return
	}
	g.nextSample = now + g.SamplePeriod
	p := g.M.LastPower()
	switch {
	case p > g.BudgetW:
		g.step(-1)
		g.throttles++
	case p < g.BudgetW*g.Headroom:
		if g.step(+1) {
			g.boosts++
		}
	}
}

// step moves every busy PMD one CPPC frequency step in the given
// direction; it reports whether any PMD actually changed.
//
// In composed mode (AttachGovernor) the boost direction only undoes
// this governor's own throttles — a PMD it never lowered, or one the
// owning policy rewrote since (Set no longer matches the chip), is
// left alone, so the governor never outruns the frequency or the
// voltage the policy stack settled to. Boosts are additionally
// voltage-guarded: a step that would push required safe Vmin above the
// programmed voltage is reverted and retried on a later evaluation
// (the policy may raise voltage first). Standalone mode (Attach) keeps
// the original free boost-to-headroom behavior; at nominal voltage the
// manufacturer guardband makes the voltage guard always pass there.
func (g *PowerCap) step(dir int) bool {
	spec := g.M.Spec
	changed := false
	for pmd := 0; pmd < spec.PMDs(); pmd++ {
		id := chip.PMDID(pmd)
		c0, c1 := spec.CoresOf(id)
		if g.M.ThreadOn(c0) == nil && g.M.ThreadOn(c1) == nil {
			continue
		}
		cur := g.M.Chip.PMDFreq(id)
		tr, claimed := g.restore[id]
		if claimed && tr.SetMHz != cur {
			// The owning policy rewrote this PMD; it owns it again.
			delete(g.restore, id)
			claimed = false
		}
		next := spec.ClampFreq(cur + chip.MHz(dir)*spec.FreqStep)
		if dir > 0 && g.composed {
			if !claimed {
				continue
			}
			if next > tr.WantMHz {
				next = tr.WantMHz
			}
		}
		if next == cur {
			if dir > 0 && claimed {
				delete(g.restore, id)
			}
			continue
		}
		g.M.Chip.SetPMDFreq(id, next)
		if dir > 0 && g.M.RequiredSafeVmin() > g.M.Chip.Voltage() {
			g.M.Chip.SetPMDFreq(id, cur)
			continue
		}
		if g.composed {
			switch {
			case dir < 0 && claimed:
				g.restore[id] = RestoreTarget{WantMHz: tr.WantMHz, SetMHz: next}
			case dir < 0:
				g.restore[id] = RestoreTarget{WantMHz: cur, SetMHz: next}
			case next == tr.WantMHz:
				delete(g.restore, id)
			default:
				g.restore[id] = RestoreTarget{WantMHz: tr.WantMHz, SetMHz: next}
			}
		}
		changed = true
	}
	return changed
}

// String describes the governor.
func (g *PowerCap) String() string {
	return fmt.Sprintf("powercap(%.1fW, %.0fms loop)", g.BudgetW, 1000*g.SamplePeriod)
}
