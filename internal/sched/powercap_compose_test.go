package sched

import (
	"math"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/sim"
	"avfs/internal/workload"
)

// TestPowerCapComposesWithDaemon pins the voltage guard on the boost
// path: a cap governor attached next to the undervolting daemon
// (AttachGovernor, the fleet's per-session power-cap wiring) must never
// raise frequency past what the daemon's settled voltage supports. The
// regression this guards: a generous, non-binding cap used to boost
// daemon-reduced PMDs back up every control period, pushing required
// Vmin above the programmed voltage — hundreds of emergencies in a
// 10-second run.
func TestPowerCapComposesWithDaemon(t *testing.T) {
	run := func(capW float64) *sim.Machine {
		m := sim.New(chip.XGene3Spec())
		d := daemon.New(m, daemon.DefaultConfig())
		d.Attach()
		if capW > 0 {
			NewPowerCap(m, capW).AttachGovernor()
		}
		m.MustSubmit(workload.MustByName("CG"), 8)
		m.MustSubmit(workload.MustByName("namd"), 1)
		m.RunFor(10)
		return m
	}

	uncapped := run(0)
	if n := len(uncapped.Emergencies()); n != 0 {
		t.Fatalf("daemon alone saw %d emergencies; broken baseline", n)
	}

	// A non-binding cap must be behavior-neutral: zero emergencies and
	// the same trajectory as no cap at all. Energy is compared to 1e-9
	// relative — the governor's 10ms hook partitions tick batches
	// differently, which reorders the (associativity-sensitive) energy
	// summation without changing any decision.
	generous := run(500)
	if n := len(generous.Emergencies()); n != 0 {
		t.Errorf("non-binding 500W cap caused %d voltage emergencies", n)
	}
	g, u := generous.Meter.Energy(), uncapped.Meter.Energy()
	if diff := math.Abs(g-u) / u; diff > 1e-9 {
		t.Errorf("non-binding cap changed energy: %.9f J vs %.9f J uncapped (rel %.2e)", g, u, diff)
	}

	// A binding cap throttles but still never undervolts the machine
	// into an emergency.
	tight := run(6)
	if n := len(tight.Emergencies()); n != 0 {
		t.Errorf("binding 6W cap caused %d voltage emergencies", n)
	}
}
