package sched

import (
	"testing"

	"avfs/internal/chip"
	"avfs/internal/sim"
	"avfs/internal/workload"
)

func TestDefaultPlacerSpreadsAcrossPMDs(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	p := &DefaultPlacer{M: m}
	for i := 0; i < 4; i++ {
		m.MustSubmit(workload.MustByName("namd"), 1)
	}
	p.PlacePending()
	if n := len(m.Running()); n != 4 {
		t.Fatalf("%d processes placed, want 4", n)
	}
	if pmds := m.UtilizedPMDCount(); pmds != 4 {
		t.Errorf("default placement used %d PMDs for 4 tasks, want 4 (spread)", pmds)
	}
}

func TestDefaultPlacerFillsSiblingsWhenFull(t *testing.T) {
	m := sim.New(chip.XGene2Spec()) // 8 cores
	p := &DefaultPlacer{M: m}
	for i := 0; i < 8; i++ {
		m.MustSubmit(workload.MustByName("namd"), 1)
	}
	p.PlacePending()
	if n := len(m.Running()); n != 8 {
		t.Fatalf("%d placed, want 8", n)
	}
	if len(m.FreeCores()) != 0 {
		t.Error("all cores must be occupied")
	}
}

func TestDefaultPlacerFIFOBlocks(t *testing.T) {
	m := sim.New(chip.XGene2Spec())
	p := &DefaultPlacer{M: m}
	big := m.MustSubmit(workload.MustByName("CG"), 8)
	small := m.MustSubmit(workload.MustByName("namd"), 1)
	occupier := m.MustSubmit(workload.MustByName("EP"), 2)
	if err := m.Place(occupier, []chip.CoreID{0, 1}); err != nil {
		t.Fatal(err)
	}
	p.PlacePending()
	// big (8 threads) cannot fit while occupier holds 2 cores; FIFO
	// fairness must also keep small queued behind it.
	if big.State != sim.Pending || small.State != sim.Pending {
		t.Error("FIFO queue must block behind the oversized head")
	}
}

func TestDefaultPlacerParallelProcess(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	p := &DefaultPlacer{M: m}
	proc := m.MustSubmit(workload.MustByName("FT"), 8)
	p.PlacePending()
	if proc.State != sim.Running {
		t.Fatal("parallel process must be placed")
	}
	if got := len(proc.Cores()); got != 8 {
		t.Errorf("%d cores assigned, want 8", got)
	}
}

func TestOndemandRampsUpWhenBusy(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	g := NewOndemand(m)
	m.Chip.SetAllFreq(m.Spec.MinFreq)
	p := m.MustSubmit(workload.MustByName("namd"), 1)
	m.Place(p, []chip.CoreID{4})
	g.Tick()
	if got := m.Chip.PMDFreq(2); got != m.Spec.MaxFreq {
		t.Errorf("busy PMD2 at %v after governor tick, want max", got)
	}
	if got := m.Chip.PMDFreq(3); got != m.Spec.MinFreq {
		t.Errorf("idle PMD3 at %v, want min (was min, stays)", got)
	}
}

func TestOndemandDecaysWhenIdle(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	g := NewOndemand(m)
	// All PMDs start at max; several governor periods of idleness must
	// decay them to the minimum.
	for i := 0; i < 10; i++ {
		g.nextSample = 0 // force an evaluation regardless of sim time
		g.Tick()
		m.RunFor(0.01)
	}
	for pmd := 0; pmd < m.Spec.PMDs(); pmd++ {
		if got := m.Chip.PMDFreq(chip.PMDID(pmd)); got != m.Spec.MinFreq {
			t.Fatalf("idle PMD%d at %v after decay, want min", pmd, got)
		}
	}
}

func TestOndemandSamplePeriod(t *testing.T) {
	m := sim.New(chip.XGene2Spec())
	g := NewOndemand(m)
	p := m.MustSubmit(workload.MustByName("namd"), 1)
	m.Place(p, []chip.CoreID{0})
	m.Chip.SetAllFreq(m.Spec.MinFreq)
	g.Tick() // evaluates at t=0
	if m.Chip.PMDFreq(0) != m.Spec.MaxFreq {
		t.Fatal("first tick must evaluate")
	}
	m.Chip.SetPMDFreq(0, m.Spec.MinFreq)
	g.Tick() // same sim time: inside the sample period, no evaluation
	if m.Chip.PMDFreq(0) != m.Spec.MinFreq {
		t.Error("governor must respect its sample period")
	}
}

func TestBaselineEndToEnd(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	NewBaseline(m)
	for _, name := range []string{"namd", "milc", "gcc", "CG"} {
		m.MustSubmit(workload.MustByName(name), 1)
	}
	if err := m.RunUntilIdle(24 * 3600); err != nil {
		t.Fatal(err)
	}
	if len(m.Finished()) != 4 {
		t.Fatalf("%d finished, want 4", len(m.Finished()))
	}
	if m.Chip.Voltage() != m.Spec.NominalMV {
		t.Error("baseline must never touch the voltage")
	}
	if len(m.Emergencies()) != 0 {
		t.Error("baseline at nominal voltage can never emergency")
	}
}
