package sched

import (
	"testing"

	"avfs/internal/chip"
	"avfs/internal/sim"
	"avfs/internal/workload"
)

// fullLoad fills the machine with CPU-intensive copies.
func fullLoad(m *sim.Machine) {
	for i := 0; i < m.Spec.Cores; i++ {
		m.MustSubmit(workload.MustByName("namd"), 1)
	}
}

func TestPowerCapHoldsBudget(t *testing.T) {
	// Uncapped full load on X-Gene 3 runs near 90 W; a 50 W budget must
	// hold after the controller settles.
	m := sim.New(chip.XGene3Spec())
	g := NewPowerCap(m, 50)
	g.Attach()
	fullLoad(m)
	m.RunFor(2) // settle
	var worst float64
	for i := 0; i < 500; i++ {
		m.Step()
		if p := m.LastPower(); p > worst {
			worst = p
		}
	}
	// One control step of slack above the budget is tolerated (the
	// controller reacts after the excursion).
	if worst > g.BudgetW*1.15 {
		t.Errorf("sustained power %.1fW far above the %.0fW budget", worst, g.BudgetW)
	}
	if g.Throttles() == 0 {
		t.Error("controller never throttled under an over-budget load")
	}
}

func TestPowerCapRestoresHeadroom(t *testing.T) {
	// With a generous budget the controller must keep (or restore) max
	// frequency.
	m := sim.New(chip.XGene3Spec())
	g := NewPowerCap(m, 500)
	g.Attach()
	m.Chip.SetAllFreq(m.Spec.HalfFreq())
	p := m.MustSubmit(workload.MustByName("namd"), 1)
	m.RunFor(2)
	if f := m.Chip.CoreFreq(p.Cores()[0]); f != m.Spec.MaxFreq {
		t.Errorf("busy PMD at %v under a generous budget, want max", f)
	}
	if g.Boosts() == 0 {
		t.Error("controller never boosted despite headroom")
	}
}

func TestPowerCapCostsTime(t *testing.T) {
	run := func(budget float64) float64 {
		m := sim.New(chip.XGene2Spec())
		if budget > 0 {
			NewPowerCap(m, budget).Attach()
		} else {
			NewBaseline(m)
		}
		for i := 0; i < 4; i++ {
			m.MustSubmit(workload.MustByName("namd"), 1)
		}
		if err := m.RunUntilIdle(24 * 3600); err != nil {
			t.Fatal(err)
		}
		return m.Now()
	}
	free := run(0)
	capped := run(8) // well below the ~14W the 4 copies draw
	if capped <= free*1.2 {
		t.Errorf("capped run %.1fs not clearly slower than uncapped %.1fs", capped, free)
	}
}

func TestPowerCapNeverTouchesIdlePMDsOrVoltage(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	g := NewPowerCap(m, 20)
	g.Attach()
	p := m.MustSubmit(workload.MustByName("namd"), 1)
	m.RunFor(1)
	if m.Chip.Voltage() != m.Spec.NominalMV {
		t.Error("power capping must not change voltage")
	}
	busyPMD := m.Spec.PMDOf(p.Cores()[0])
	for pmd := 0; pmd < m.Spec.PMDs(); pmd++ {
		if chip.PMDID(pmd) == busyPMD {
			continue
		}
		if f := m.Chip.PMDFreq(chip.PMDID(pmd)); f != m.Spec.MaxFreq {
			t.Errorf("idle PMD%d frequency changed to %v", pmd, f)
		}
	}
}

func TestPowerCapBadBudgetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero budget should panic")
		}
	}()
	NewPowerCap(sim.New(chip.XGene2Spec()), 0)
}
