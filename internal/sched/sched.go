// Package sched provides the baseline scheduling substrate the paper
// compares against: the default Linux placement behaviour (load-balanced
// spreading of new tasks across idle cores, preferring idle PMDs) and the
// ondemand cpufreq governor, both at nominal voltage.
//
// The "Baseline" configuration of Tables III/IV is exactly this package
// driving a machine; the paper's daemon (internal/daemon) replaces it.
package sched

import (
	"math"
	"sort"

	"avfs/internal/chip"
	"avfs/internal/sim"
)

// DefaultPlacer approximates the Linux CFS load balancer's initial
// placement: a new thread goes to the idlest core, which in practice means
// spreading across PMDs before doubling them up.
type DefaultPlacer struct {
	M *sim.Machine
}

// pickCores selects n free cores, preferring cores whose PMD sibling is
// idle (spread), then filling remaining capacity; it returns nil if fewer
// than n cores are free.
func (p *DefaultPlacer) pickCores(n int) []chip.CoreID {
	free := p.M.FreeCores()
	if len(free) < n {
		return nil
	}
	// Rank free cores: cores on fully idle PMDs first, then by ID for
	// determinism.
	idlePMD := func(c chip.CoreID) bool {
		return p.M.ThreadOn(c^1) == nil
	}
	sort.SliceStable(free, func(i, j int) bool {
		ii, jj := idlePMD(free[i]), idlePMD(free[j])
		if ii != jj {
			return ii
		}
		return free[i] < free[j]
	})
	// Picking spread cores one at a time changes sibling idleness;
	// emulate the balancer's sequential decisions.
	var out []chip.CoreID
	taken := map[chip.CoreID]bool{}
	for len(out) < n {
		best := chip.CoreID(-1)
		bestIdle := false
		for _, c := range free {
			if taken[c] {
				continue
			}
			sibIdle := p.M.ThreadOn(c^1) == nil && !taken[c^1]
			if best < 0 || (sibIdle && !bestIdle) {
				best, bestIdle = c, sibIdle
				if sibIdle {
					break
				}
			}
		}
		if best < 0 {
			return nil
		}
		taken[best] = true
		out = append(out, best)
	}
	return out
}

// PlacePending places as many pending processes as free cores allow, in
// FIFO order; a process that does not fit blocks the queue (FIFO fairness,
// mirroring a batch spooler feeding a fully loaded server).
func (p *DefaultPlacer) PlacePending() {
	if p.M.PendingCount() == 0 {
		return
	}
	for _, proc := range p.M.Pending() {
		cores := p.pickCores(len(proc.Threads))
		if cores == nil {
			return
		}
		if err := p.M.Place(proc, cores); err != nil {
			panic(err) // cores were just verified free
		}
	}
}

// Attach hooks the placer to the machine so pending processes are placed
// on every tick (completions free cores, so the next tick drains the
// queue). The hook is batch-aware: with nothing pending the placer never
// needs a tick-exact step (completions invalidate the machine's steady
// state on their own, so arrival-free stretches coalesce freely).
func (p *DefaultPlacer) Attach() {
	p.M.OnTickBounded(func(*sim.Machine, int) { p.PlacePending() }, p.nextBoundary)
}

// nextBoundary forces per-tick stepping only while something waits for
// placement.
func (p *DefaultPlacer) nextBoundary() float64 {
	if p.M.PendingCount() > 0 {
		return 0
	}
	return math.Inf(1)
}

// Ondemand is the Linux ondemand cpufreq governor operating per policy
// (one policy per PMD on X-Gene): it samples utilization periodically and
// jumps to the maximum frequency when a PMD is busy, stepping down toward
// the minimum when it idles. Voltage is untouched (the X-Gene firmware
// keeps V nominal at every frequency — the paper's motivating observation).
type Ondemand struct {
	M *sim.Machine
	// SamplePeriod is the governor's evaluation interval in seconds
	// (Linux default is tens of milliseconds; 0.1 s here).
	SamplePeriod float64
	// StepDownFactor is how far the frequency falls per idle sample,
	// as a fraction of max frequency.
	StepDownFactor float64

	nextSample float64
}

// NewOndemand creates the governor with Linux-like defaults.
func NewOndemand(m *sim.Machine) *Ondemand {
	return &Ondemand{M: m, SamplePeriod: 0.1, StepDownFactor: 0.25}
}

// NextSample returns the simulation time of the next governor evaluation
// — the tick boundary a coalescing simulator must not batch past.
func (g *Ondemand) NextSample() float64 { return g.nextSample }

// Tick runs one governor evaluation if the sample period elapsed.
func (g *Ondemand) Tick() {
	now := g.M.Now()
	if now+1e-12 < g.nextSample {
		return
	}
	g.nextSample = now + g.SamplePeriod
	spec := g.M.Spec
	for p := 0; p < spec.PMDs(); p++ {
		pmd := chip.PMDID(p)
		c0, c1 := spec.CoresOf(pmd)
		busy := g.M.ThreadOn(c0) != nil || g.M.ThreadOn(c1) != nil
		cur := g.M.Chip.PMDFreq(pmd)
		if busy {
			// Above the up-threshold: jump straight to max.
			if cur != spec.MaxFreq {
				g.M.Chip.SetPMDFreq(pmd, spec.MaxFreq)
			}
			continue
		}
		// Idle: decay toward the minimum frequency.
		down := chip.MHz(float64(spec.MaxFreq) * g.StepDownFactor)
		g.M.Chip.SetPMDFreq(pmd, cur-down)
	}
}

// Baseline bundles the default placer and the ondemand governor — the
// complete "Baseline" system configuration of the paper's evaluation.
type Baseline struct {
	Placer   *DefaultPlacer
	Governor *Ondemand

	// disabled suspends the stack without detaching its hooks; the fleet
	// service flips it when switching a live session's policy between the
	// baseline stack and the paper's daemon.
	disabled bool
}

// NewBaseline wires the default stack onto a machine (voltage stays at
// whatever the chip is programmed to — nominal unless the experiment
// changes it, as the "Safe Vmin" configuration does).
func NewBaseline(m *sim.Machine) *Baseline {
	b := &Baseline{
		Placer:   &DefaultPlacer{M: m},
		Governor: NewOndemand(m),
	}
	m.OnTickBounded(func(*sim.Machine, int) {
		if b.disabled {
			return
		}
		b.Placer.PlacePending()
		b.Governor.Tick()
	}, func() float64 {
		// A suspended stack imposes no tick boundary; pending work needs
		// per-tick placement attempts; otherwise the stack next acts at
		// the governor's sample instant.
		if b.disabled {
			return math.Inf(1)
		}
		if m.PendingCount() > 0 {
			return 0
		}
		return b.Governor.NextSample()
	})
	return b
}

// SetEnabled suspends or resumes the placer and governor. The stack starts
// enabled; suspended, its hooks are inert and never constrain the
// simulator's tick coalescing.
func (b *Baseline) SetEnabled(on bool) { b.disabled = !on }

// Enabled reports whether the stack is active.
func (b *Baseline) Enabled() bool { return !b.disabled }

// BaselineState is the serializable controller state of a Baseline stack,
// captured by the fleet's session snapshots.
type BaselineState struct {
	Disabled   bool    `json:"disabled"`
	NextSample float64 `json:"next_sample"`
}

// CaptureState snapshots the stack's mutable state.
func (b *Baseline) CaptureState() BaselineState {
	return BaselineState{Disabled: b.disabled, NextSample: b.Governor.nextSample}
}

// RestoreState overwrites the stack's mutable state from a snapshot. The
// stack must already be attached to the restored machine.
func (b *Baseline) RestoreState(st BaselineState) {
	b.disabled = st.Disabled
	b.Governor.nextSample = st.NextSample
}
