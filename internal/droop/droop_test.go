package droop

import (
	"testing"
	"testing/quick"

	"avfs/internal/chip"
	"avfs/internal/clock"
	"avfs/internal/workload"
)

func TestClassOfPMDsTableII(t *testing.T) {
	s := chip.XGene3Spec()
	cases := []struct {
		pmds int
		want MagnitudeClass
	}{
		{1, 0}, {2, 0},
		{3, 1}, {4, 1},
		{5, 2}, {8, 2},
		{9, 3}, {16, 3},
	}
	for _, tc := range cases {
		if got := ClassOfPMDs(s, tc.pmds); got != tc.want {
			t.Errorf("ClassOfPMDs(%d) = %d, want %d", tc.pmds, got, tc.want)
		}
	}
}

func TestClassOfPMDsClamping(t *testing.T) {
	s := chip.XGene2Spec() // 4 PMDs
	if got := ClassOfPMDs(s, 0); got != 0 {
		t.Errorf("0 PMDs clamps to class 0, got %d", got)
	}
	if got := ClassOfPMDs(s, 100); got != 1 {
		t.Errorf("overflow clamps to the chip's max PMDs (4 → class 1), got %d", got)
	}
}

func TestBinsMatchTableII(t *testing.T) {
	want := []Bin{{25, 35}, {35, 45}, {45, 55}, {55, 65}}
	for i, b := range Bins() {
		if b != want[i] {
			t.Errorf("bin %d = %v, want %v", i, b, want[i])
		}
	}
	if BinOf(2).String() != "[45mV, 55mV)" {
		t.Errorf("Bin.String = %q", BinOf(2).String())
	}
}

func TestBinContains(t *testing.T) {
	b := Bin{45, 55}
	if !b.Contains(45) || !b.Contains(54) {
		t.Error("bin must contain its half-open range")
	}
	if b.Contains(55) || b.Contains(44) {
		t.Error("bin must exclude its upper bound and below-range values")
	}
}

func TestWorstMagnitudeMonotoneInPMDs(t *testing.T) {
	s := chip.XGene3Spec()
	prev := chip.Millivolts(0)
	for n := 1; n <= s.PMDs(); n++ {
		m := WorstMagnitude(s, n, clock.FullSpeed)
		if m < prev {
			t.Fatalf("worst magnitude decreased at %d PMDs", n)
		}
		prev = m
	}
}

func TestWorstMagnitudeSoftensWithFrequency(t *testing.T) {
	s := chip.XGene2Spec()
	full := WorstMagnitude(s, 4, clock.FullSpeed)
	half := WorstMagnitude(s, 4, clock.HalfSpeed)
	div := WorstMagnitude(s, 4, clock.DividedLow)
	if !(div < half && half < full) {
		t.Errorf("magnitudes must soften with slower clocks: %v / %v / %v", full, half, div)
	}
}

// TestFig6BinPopulation checks the paper's Fig. 6 observation: a
// configuration's own magnitude bin is populated for every program, while
// deeper bins are essentially silent.
func TestFig6BinPopulation(t *testing.T) {
	s := chip.XGene3Spec()
	scope := NewOscilloscope(s, 1)
	const cycles = 1_000_000_000
	for _, tc := range []struct {
		utilized int
		own      MagnitudeClass
	}{
		{16, 3}, // 32T or 16T spreaded
		{8, 2},  // 16T clustered or 8T spreaded
		{4, 1},  // 8T clustered
	} {
		for _, b := range workload.CharacterizationSet() {
			h := scope.Observe(b, tc.utilized, clock.FullSpeed, cycles)
			own := h.Per1M(tc.own)
			if own < 1 {
				t.Errorf("%s @ %d PMDs: own-bin rate %.2f/1M too low", b.Name, tc.utilized, own)
			}
			for deeper := tc.own + 1; deeper < NumClasses; deeper++ {
				if r := h.Per1M(deeper); r > own*0.05 {
					t.Errorf("%s @ %d PMDs: deeper bin %d rate %.2f not near-zero (own %.2f)",
						b.Name, tc.utilized, deeper, r, own)
				}
			}
		}
	}
}

// TestFig6HalfSpeedDemotesClass checks that reduced frequency shifts the
// droop distribution one bin shallower.
func TestFig6HalfSpeedDemotesClass(t *testing.T) {
	s := chip.XGene3Spec()
	scope := NewOscilloscope(s, 2)
	b := workload.MustByName("CG")
	const cycles = 1_000_000_000
	full := scope.Observe(b, 16, clock.FullSpeed, cycles)
	half := scope.Observe(b, 16, clock.HalfSpeed, cycles)
	if full.Per1M(3) < 1 {
		t.Error("full speed at 16 PMDs must populate the [55,65) bin")
	}
	if half.Per1M(3) > full.Per1M(3)*0.05 {
		t.Error("half speed at 16 PMDs must vacate the [55,65) bin")
	}
	if half.Per1M(2) < 1 {
		t.Error("half speed at 16 PMDs must populate the [45,55) bin instead")
	}
}

func TestObserveDeterministicUnderSeed(t *testing.T) {
	s := chip.XGene3Spec()
	b := workload.MustByName("milc")
	h1 := NewOscilloscope(s, 7).Observe(b, 8, clock.FullSpeed, 1e8)
	h2 := NewOscilloscope(s, 7).Observe(b, 8, clock.FullSpeed, 1e8)
	if h1 != h2 {
		t.Error("same seed must reproduce the same histogram")
	}
	h3 := NewOscilloscope(s, 8).Observe(b, 8, clock.FullSpeed, 1e8)
	if h1 == h3 {
		t.Error("different seeds should perturb the histogram")
	}
}

func TestRatesScaleWithBenchmark(t *testing.T) {
	// lbm's droop event rate must exceed namd's in the same config.
	s := chip.XGene3Spec()
	scope := NewOscilloscope(s, 3)
	lbm := scope.Observe(workload.MustByName("lbm"), 16, clock.FullSpeed, 1e9)
	namd := scope.Observe(workload.MustByName("namd"), 16, clock.FullSpeed, 1e9)
	if lbm.Per1M(3) <= namd.Per1M(3) {
		t.Errorf("lbm rate %.1f should exceed namd rate %.1f", lbm.Per1M(3), namd.Per1M(3))
	}
}

func TestSampleEventsWithinBins(t *testing.T) {
	s := chip.XGene3Spec()
	scope := NewOscilloscope(s, 4)
	b := workload.MustByName("CG")
	const cycles = 100_000_000
	events := scope.SampleEvents(b, 16, clock.FullSpeed, cycles, 200)
	if len(events) == 0 {
		t.Fatal("expected sampled events")
	}
	for _, e := range events {
		if e.Magnitude < 25 || e.Magnitude >= 65 {
			t.Errorf("event magnitude %v outside detector range", e.Magnitude)
		}
		if e.Cycle >= cycles {
			t.Errorf("event cycle %d outside window", e.Cycle)
		}
	}
}

func TestHistogramAddAndPer1M(t *testing.T) {
	var h Histogram
	h.Cycles = 2_000_000
	h.Add(Event{Magnitude: 30})
	h.Add(Event{Magnitude: 60})
	h.Add(Event{Magnitude: 60})
	h.Add(Event{Magnitude: 10}) // too shallow: not detected
	if h.Counts[0] != 1 || h.Counts[3] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Per1M(3) != 1.0 {
		t.Errorf("Per1M(3) = %v, want 1.0", h.Per1M(3))
	}
	var empty Histogram
	if empty.Per1M(0) != 0 {
		t.Error("empty histogram rate must be 0")
	}
}

func TestClassMonotoneProperty(t *testing.T) {
	s := chip.XGene3Spec()
	f := func(a, b uint8) bool {
		na, nb := int(a%17), int(b%17)
		if na > nb {
			na, nb = nb, na
		}
		return ClassOfPMDs(s, na) <= ClassOfPMDs(s, nb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMagnitudeClassString(t *testing.T) {
	if got := MagnitudeClass(2).String(); got != "2 [45mV, 55mV)" {
		t.Errorf("MagnitudeClass(2).String() = %q", got)
	}
	if got := MagnitudeClass(9).String(); got != "MagnitudeClass(9)" {
		t.Errorf("out-of-range String = %q", got)
	}
}
