package droop_test

import (
	"fmt"

	"avfs/internal/chip"
	"avfs/internal/clock"
	"avfs/internal/droop"
	"avfs/internal/workload"
)

// The droop magnitude class depends on the utilized PMDs, not the
// workload — the electrical core of Table II.
func ExampleClassOfPMDs() {
	spec := chip.XGene3Spec()
	for _, pmds := range []int{2, 4, 8, 16} {
		c := droop.ClassOfPMDs(spec, pmds)
		fmt.Printf("%2d PMDs -> class %d, droops in %v\n", pmds, c, droop.BinOf(c))
	}
	// Output:
	//  2 PMDs -> class 0, droops in [25mV, 35mV)
	//  4 PMDs -> class 1, droops in [35mV, 45mV)
	//  8 PMDs -> class 2, droops in [45mV, 55mV)
	// 16 PMDs -> class 3, droops in [55mV, 65mV)
}

// The oscilloscope reproduces Fig. 6: a configuration populates its own
// magnitude bin; deeper bins stay silent.
func ExampleOscilloscope_Observe() {
	spec := chip.XGene3Spec()
	scope := droop.NewOscilloscope(spec, 1)
	cg := workload.MustByName("CG")
	const cycles = 1_000_000_000
	full := scope.Observe(cg, 16, clock.FullSpeed, cycles) // 32T or 16T spreaded
	clust := scope.Observe(cg, 8, clock.FullSpeed, cycles) // 16T clustered
	fmt.Printf("16 PMDs: [55,65) populated: %v\n", full.Per1M(3) > 10)
	fmt.Printf(" 8 PMDs: [55,65) silent: %v, [45,55) populated: %v\n",
		clust.Per1M(3) < 1, clust.Per1M(2) > 10)
	// Output:
	// 16 PMDs: [55,65) populated: true
	//  8 PMDs: [55,65) silent: true, [45,55) populated: true
}
