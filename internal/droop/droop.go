// Package droop models supply-voltage droop events — the transient dips
// caused by di/dt load steps on the power-delivery network — as observed
// through the X-Gene 3 embedded oscilloscope and the droop PMU counters
// (Sec. IV-A of the paper).
//
// The paper's central electrical finding is that in multicore executions
// the *magnitude* of the worst droops is workload-independent and is set
// by how many PMDs are simultaneously active (more active core pairs →
// more aligned current steps → deeper droops), while the *rate* of events
// varies per program. Table II captures the resulting magnitude classes:
//
//	utilized PMDs   magnitude bin
//	1–2             [25 mV, 35 mV)
//	3–4             [35 mV, 45 mV)
//	5–8             [45 mV, 55 mV)
//	9–16            [55 mV, 65 mV)
//
// at full speed; reduced-frequency classes shave roughly one sub-bin off
// the magnitude because lower clock rates soften the current steps. The
// safe Vmin of a configuration is, to first order, the class's critical
// voltage plus its worst droop magnitude — which is why the daemon can use
// the utilized-PMD count as a safe proxy for the required voltage.
package droop

import (
	"fmt"
	"math/rand"

	"avfs/internal/chip"
	"avfs/internal/clock"
	"avfs/internal/workload"
)

// MagnitudeClass indexes the droop magnitude bins of Table II, from the
// shallowest (0, 1–2 PMDs) to the deepest (3, 9–16 PMDs).
type MagnitudeClass int

// String renders the class with its Table II bin, e.g. "2 [45mV, 55mV)" —
// the form the daemon's status line and decision traces print.
func (c MagnitudeClass) String() string {
	if c < 0 || c >= NumClasses {
		return fmt.Sprintf("MagnitudeClass(%d)", int(c))
	}
	return fmt.Sprintf("%d %s", int(c), bins[c])
}

// NumClasses is the number of magnitude classes.
const NumClasses = 4

// Bin is a half-open droop magnitude interval [Lo, Hi) in millivolts.
type Bin struct {
	Lo, Hi chip.Millivolts
}

// Contains reports whether magnitude m falls in the bin.
func (b Bin) Contains(m chip.Millivolts) bool { return m >= b.Lo && m < b.Hi }

// String renders the bin like the paper: "[45mV, 55mV)".
func (b Bin) String() string {
	return "[" + b.Lo.String() + ", " + b.Hi.String() + ")"
}

// bins holds the Table II magnitude bins indexed by class.
var bins = [NumClasses]Bin{
	{25, 35},
	{35, 45},
	{45, 55},
	{55, 65},
}

// BinOf returns the magnitude bin of class c.
func BinOf(c MagnitudeClass) Bin { return bins[c] }

// Bins returns all magnitude bins in ascending class order.
func Bins() []Bin { return bins[:] }

// ClassOfPMDs maps the number of simultaneously utilized PMDs to its
// magnitude class (Table II). The count is clamped to [1, spec.PMDs()].
func ClassOfPMDs(spec *chip.Spec, utilized int) MagnitudeClass {
	if utilized < 1 {
		utilized = 1
	}
	if utilized > spec.PMDs() {
		utilized = spec.PMDs()
	}
	switch {
	case utilized <= 2:
		return 0
	case utilized <= 4:
		return 1
	case utilized <= 8:
		return 2
	default:
		return 3
	}
}

// freqClassSoftenMV is how much a frequency class below full speed shaves
// off droop magnitudes: slower clocks soften current steps.
func freqClassSoftenMV(fc clock.FreqClass) chip.Millivolts {
	switch fc {
	case clock.FullSpeed:
		return 0
	case clock.HalfSpeed:
		return 6
	default: // DividedLow
		return 12
	}
}

// WorstMagnitude returns the worst-case droop magnitude for a
// configuration: the top of the class's bin minus the frequency softening.
// This is the quantity the safe-Vmin model adds to the critical voltage.
func WorstMagnitude(spec *chip.Spec, utilized int, fc clock.FreqClass) chip.Millivolts {
	c := ClassOfPMDs(spec, utilized)
	m := bins[c].Hi - 1 - freqClassSoftenMV(fc)
	if m < 0 {
		m = 0
	}
	return m
}

// Event is one droop detection: its depth and the cycle it occurred at.
type Event struct {
	Cycle     uint64
	Magnitude chip.Millivolts
}

// Histogram counts droop detections per magnitude bin.
type Histogram struct {
	Counts [NumClasses]uint64
	Cycles uint64 // observation window length in cycles
}

// Add records one event.
func (h *Histogram) Add(e Event) {
	for i, b := range bins {
		if b.Contains(e.Magnitude) {
			h.Counts[i]++
			return
		}
	}
	// Below 25 mV: too shallow for the detector; above 65 mV cannot
	// happen in this model. Shallow events are simply not detected.
	_ = e
}

// Per1M returns the detection rate of bin class c per million cycles.
func (h *Histogram) Per1M(c MagnitudeClass) float64 {
	if h.Cycles == 0 {
		return 0
	}
	return float64(h.Counts[c]) * 1e6 / float64(h.Cycles)
}

// Oscilloscope synthesizes droop event streams for a running
// configuration, standing in for the X-Gene 3 embedded oscilloscope. A
// fixed seed makes runs reproducible.
type Oscilloscope struct {
	spec *chip.Spec
	rng  *rand.Rand
}

// NewOscilloscope creates a scope for one chip with a deterministic seed.
func NewOscilloscope(spec *chip.Spec, seed int64) *Oscilloscope {
	return &Oscilloscope{spec: spec, rng: rand.New(rand.NewSource(seed))}
}

// relativeRate returns how the event rate of class bin `bin` relates to the
// configuration's own class: the dominant bin is the configuration's class,
// one bin shallower sees a reduced tail, and deeper bins are essentially
// silent (<0.5% leakage models detector noise).
func relativeRate(cfg, bin MagnitudeClass) float64 {
	switch {
	case bin == cfg:
		return 1.0
	case bin == cfg-1:
		return 0.35
	case bin < cfg-1:
		return 0.10
	default: // bin > cfg: deeper droops than the class can produce
		return 0.003
	}
}

// Observe runs the scope over `cycles` cycles of benchmark b executing on
// `utilized` PMDs in frequency class fc, and returns the detection
// histogram. The per-program rate comes from the benchmark model; the
// magnitude distribution comes from the utilized-PMD class (Fig. 6).
func (o *Oscilloscope) Observe(b *workload.Benchmark, utilized int, fc clock.FreqClass, cycles uint64) Histogram {
	cfg := ClassOfPMDs(o.spec, utilized)
	// Frequency softening can demote the effective class by one bin at
	// half speed and below (the same mechanism that lowers Vmin).
	if fc != clock.FullSpeed && cfg > 0 {
		cfg--
	}
	h := Histogram{Cycles: cycles}
	millions := float64(cycles) / 1e6
	for bin := MagnitudeClass(0); bin < NumClasses; bin++ {
		mean := b.DroopPer1M * relativeRate(cfg, bin) * millions
		// Poisson-like jitter around the mean (±10%), deterministic
		// under the scope's seed.
		n := mean * (0.9 + 0.2*o.rng.Float64())
		h.Counts[bin] = uint64(n + 0.5)
	}
	return h
}

// SampleEvents draws up to max individual droop events for a window, for
// consumers that need event-level detail (e.g. the trace examples). Event
// magnitudes are uniform within each bin.
func (o *Oscilloscope) SampleEvents(b *workload.Benchmark, utilized int, fc clock.FreqClass, cycles uint64, max int) []Event {
	h := o.Observe(b, utilized, fc, cycles)
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 || max == 0 {
		return nil
	}
	n := int(total)
	if n > max {
		n = max
	}
	events := make([]Event, 0, n)
	for i := 0; i < n; i++ {
		// Pick a bin proportionally to its count.
		pick := uint64(o.rng.Int63n(int64(total)))
		var bin MagnitudeClass
		var acc uint64
		for c := MagnitudeClass(0); c < NumClasses; c++ {
			acc += h.Counts[c]
			if pick < acc {
				bin = c
				break
			}
		}
		bn := bins[bin]
		mag := bn.Lo + chip.Millivolts(o.rng.Intn(int(bn.Hi-bn.Lo)))
		events = append(events, Event{
			Cycle:     uint64(o.rng.Int63n(int64(cycles))),
			Magnitude: mag,
		})
	}
	return events
}
