// Package clock models the CPPC (Collaborative Processor Performance
// Control) frequency-delivery semantics of the X-Gene PMD clock tree, which
// determine how a requested frequency maps onto electrical behaviour.
//
// Both chips derive each PMD clock from a full-speed source through two
// mechanisms (Sec. II-B of the paper):
//
//   - Clock skipping: ratios other than 1/2 are produced by skipping pulses
//     of the input clock. The circuit still observes full-speed edges, so
//     the timing-critical behaviour (and hence the safe Vmin) of any
//     skipped ratio above one half matches the maximum frequency, and any
//     skipped ratio below one half matches the half-speed point.
//   - Clock division: a ratio of exactly 1/2 is produced by a true divider;
//     the slower edges relax timing and allow a ~3% lower safe Vmin.
//
// On X-Gene 2 the CPPC firmware additionally activates true clock division
// for the 0.9 GHz setting, producing a much larger (~12% of nominal) Vmin
// reduction; X-Gene 3's firmware does not exhibit this behaviour, so
// everything at or below half speed behaves like the half-speed point.
package clock

import "avfs/internal/chip"

// FreqClass partitions the frequency range into the electrically distinct
// regions identified by the paper. All frequencies within one class share
// the same safe Vmin.
type FreqClass int

const (
	// FullSpeed covers every setting above half of the maximum clock.
	// These are produced by clock skipping and have the Vmin of the
	// maximum frequency.
	FullSpeed FreqClass = iota
	// HalfSpeed covers the exact half-clock point (true clock division,
	// ~3% lower Vmin) and, via skipping, every point below it that does
	// not qualify for DividedLow.
	HalfSpeed
	// DividedLow is the X-Gene 2 specific deep-division region at and
	// below 0.9 GHz, with a ~12%-of-nominal Vmin reduction.
	DividedLow
)

// String names the class.
func (fc FreqClass) String() string {
	switch fc {
	case FullSpeed:
		return "full-speed"
	case HalfSpeed:
		return "half-speed"
	case DividedLow:
		return "divided-low"
	default:
		return "unknown"
	}
}

// XGene2DividedLowMax is the highest X-Gene 2 frequency at which the CPPC
// firmware engages true clock division with the deep Vmin reduction.
const XGene2DividedLowMax chip.MHz = 900

// ClassOf returns the frequency class of frequency f on the given chip.
func ClassOf(spec *chip.Spec, f chip.MHz) FreqClass {
	half := spec.HalfFreq()
	if spec.Model == chip.XGene2 && f <= XGene2DividedLowMax {
		return DividedLow
	}
	if f > half {
		return FullSpeed
	}
	return HalfSpeed
}

// EffectiveHz returns the average delivered clock rate, in Hz, for a
// requested setting f. CPPC delivers the requested average by interleaving
// source-clock pulses, so throughput follows the request exactly; only the
// electrical class is quantized.
func EffectiveHz(spec *chip.Spec, f chip.MHz) float64 {
	return spec.ClampFreq(f).Hz()
}

// ClassRepresentative returns the canonical frequency used to report
// results for a class: the maximum clock for FullSpeed, the half clock for
// HalfSpeed, and 0.9 GHz for the X-Gene 2 DividedLow region.
func ClassRepresentative(spec *chip.Spec, fc FreqClass) chip.MHz {
	switch fc {
	case FullSpeed:
		return spec.MaxFreq
	case HalfSpeed:
		return spec.HalfFreq()
	case DividedLow:
		return XGene2DividedLowMax
	}
	return spec.MaxFreq
}

// Classes returns the electrically distinct classes available on a chip,
// fastest first. X-Gene 2 exposes all three; X-Gene 3 only the first two.
func Classes(spec *chip.Spec) []FreqClass {
	if spec.Model == chip.XGene2 {
		return []FreqClass{FullSpeed, HalfSpeed, DividedLow}
	}
	return []FreqClass{FullSpeed, HalfSpeed}
}

// ReportedFrequencies returns the frequencies at which the paper reports
// results for a chip: 2.4/1.2/0.9 GHz on X-Gene 2 and 3.0/1.5 GHz on
// X-Gene 3 (one representative per class; intermediate settings share the
// class Vmin and are therefore redundant for characterization).
func ReportedFrequencies(spec *chip.Spec) []chip.MHz {
	var out []chip.MHz
	for _, fc := range Classes(spec) {
		out = append(out, ClassRepresentative(spec, fc))
	}
	return out
}
