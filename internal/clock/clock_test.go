package clock

import (
	"testing"
	"testing/quick"

	"avfs/internal/chip"
)

func TestClassOfXGene2(t *testing.T) {
	s := chip.XGene2Spec()
	cases := []struct {
		f    chip.MHz
		want FreqClass
	}{
		{2400, FullSpeed},
		{2100, FullSpeed},
		{1500, FullSpeed}, // above half: clock skipping, full-speed Vmin
		{1201, FullSpeed},
		{1200, HalfSpeed}, // exactly half: true clock division
		{1000, HalfSpeed},
		{901, HalfSpeed},
		{900, DividedLow}, // X-Gene 2 deep division point
		{600, DividedLow},
		{300, DividedLow},
	}
	for _, tc := range cases {
		if got := ClassOf(s, tc.f); got != tc.want {
			t.Errorf("X-Gene 2 ClassOf(%v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestClassOfXGene3(t *testing.T) {
	s := chip.XGene3Spec()
	cases := []struct {
		f    chip.MHz
		want FreqClass
	}{
		{3000, FullSpeed},
		{1875, FullSpeed},
		{1501, FullSpeed},
		{1500, HalfSpeed},
		{900, HalfSpeed}, // X-Gene 3 shows no deep-division behaviour
		{375, HalfSpeed},
	}
	for _, tc := range cases {
		if got := ClassOf(s, tc.f); got != tc.want {
			t.Errorf("X-Gene 3 ClassOf(%v) = %v, want %v", tc.f, got, tc.want)
		}
	}
}

func TestXGene3HasNoDividedLow(t *testing.T) {
	s := chip.XGene3Spec()
	f := func(raw uint16) bool {
		fr := chip.MHz(raw)
		return ClassOf(s, fr) != DividedLow
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClassMonotoneInFrequency(t *testing.T) {
	// Lower frequency can never move to a faster (smaller) class.
	for _, s := range []*chip.Spec{chip.XGene2Spec(), chip.XGene3Spec()} {
		prev := ClassOf(s, s.MaxFreq)
		for f := s.MaxFreq; f >= s.MinFreq; f -= 25 {
			c := ClassOf(s, f)
			if c < prev {
				t.Fatalf("%s: class went faster as frequency dropped at %v", s.Name, f)
			}
			prev = c
		}
	}
}

func TestClassRepresentatives(t *testing.T) {
	x2 := chip.XGene2Spec()
	if ClassRepresentative(x2, FullSpeed) != 2400 ||
		ClassRepresentative(x2, HalfSpeed) != 1200 ||
		ClassRepresentative(x2, DividedLow) != 900 {
		t.Error("X-Gene 2 representatives must be 2400/1200/900 (the paper's reported points)")
	}
	x3 := chip.XGene3Spec()
	if ClassRepresentative(x3, FullSpeed) != 3000 || ClassRepresentative(x3, HalfSpeed) != 1500 {
		t.Error("X-Gene 3 representatives must be 3000/1500")
	}
}

func TestReportedFrequencies(t *testing.T) {
	got2 := ReportedFrequencies(chip.XGene2Spec())
	if len(got2) != 3 || got2[0] != 2400 || got2[1] != 1200 || got2[2] != 900 {
		t.Errorf("X-Gene 2 reported frequencies = %v, want [2400 1200 900]", got2)
	}
	got3 := ReportedFrequencies(chip.XGene3Spec())
	if len(got3) != 2 || got3[0] != 3000 || got3[1] != 1500 {
		t.Errorf("X-Gene 3 reported frequencies = %v, want [3000 1500]", got3)
	}
}

func TestEffectiveHz(t *testing.T) {
	s := chip.XGene3Spec()
	if got := EffectiveHz(s, 1500); got != 1.5e9 {
		t.Errorf("EffectiveHz(1500) = %v", got)
	}
	// Off-grid requests snap down to the CPPC grid.
	if got := EffectiveHz(s, 1600); got != 1.5e9 {
		t.Errorf("EffectiveHz(1600) = %v, want 1.5e9", got)
	}
}

func TestClasses(t *testing.T) {
	if n := len(Classes(chip.XGene2Spec())); n != 3 {
		t.Errorf("X-Gene 2 has %d classes, want 3", n)
	}
	if n := len(Classes(chip.XGene3Spec())); n != 2 {
		t.Errorf("X-Gene 3 has %d classes, want 2", n)
	}
}

func TestFreqClassString(t *testing.T) {
	for fc, want := range map[FreqClass]string{
		FullSpeed: "full-speed", HalfSpeed: "half-speed", DividedLow: "divided-low",
	} {
		if fc.String() != want {
			t.Errorf("%d.String() = %q, want %q", fc, fc.String(), want)
		}
	}
}
