package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"avfs/api"
	"avfs/internal/cluster"
	"avfs/internal/service"
	"avfs/internal/telemetry/export"
)

// node is one fleet behind real HTTP, with its cluster agent.
type node struct {
	name  string
	fleet *service.Fleet
	srv   *httptest.Server
	agent *cluster.Agent
}

// newCluster stands up a router and n nodes, each registered by one
// initial heartbeat. Agents don't run their loops — tests call Beat
// explicitly so membership changes are deterministic.
func newCluster(t *testing.T, n int, budgetW float64) (*cluster.Router, *httptest.Server, []*node) {
	t.Helper()
	rt := cluster.NewRouter(cluster.RouterConfig{BudgetW: budgetW, HeartbeatTTL: time.Minute})
	rts := httptest.NewServer(rt.Handler())
	t.Cleanup(rts.Close)

	nodes := make([]*node, n)
	for i := range nodes {
		name := fmt.Sprintf("n%d", i+1)
		f := service.New(service.Config{NodeName: name, ReapEvery: -1})
		ts := httptest.NewServer(f.Handler())
		a, err := cluster.NewAgent(cluster.AgentConfig{
			Fleet: f, RouterURL: rts.URL, Name: name, AdvertiseURL: ts.URL,
		})
		if err != nil {
			t.Fatalf("NewAgent(%s): %v", name, err)
		}
		f.SetRedirect(rts.URL)
		if err := a.Beat(context.Background()); err != nil {
			t.Fatalf("initial beat %s: %v", name, err)
		}
		nodes[i] = &node{name: name, fleet: f, srv: ts, agent: a}
		t.Cleanup(func() { ts.Close(); f.Close() })
	}
	return rt, rts, nodes
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, http.Header) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode/100 == 2 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("%s %s: bad body %s: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode, resp.Header
}

// TestRouterEndToEnd drives the full cluster surface over real HTTP:
// placement spread, fleet-wide pagination, proxying with node
// attribution, wrong-node redirects, drain + rebalance migration,
// placement-cache self-healing, and aggregated metrics.
func TestRouterEndToEnd(t *testing.T) {
	_, rts, nodes := newCluster(t, 3, 0)
	ctx := context.Background()

	// Readiness reflects membership.
	if status, _ := doJSON(t, http.MethodGet, rts.URL+"/readyz", nil, nil); status != 200 {
		t.Fatalf("readyz with 3 nodes = %d", status)
	}

	// Create a dozen sessions through the router; placement must spread.
	perNode := map[string]int{}
	var ids []string
	for i := 0; i < 12; i++ {
		var s api.Session
		status, hdr := doJSON(t, http.MethodPost, rts.URL+"/v1/sessions",
			api.CreateSessionRequest{Policy: "baseline"}, &s)
		if status != 201 {
			t.Fatalf("create %d: HTTP %d", i, status)
		}
		if s.Node == "" || hdr.Get("X-AVFS-Node") != s.Node {
			t.Fatalf("create %d: node attribution missing (body %q, header %q)",
				i, s.Node, hdr.Get("X-AVFS-Node"))
		}
		if !strings.HasPrefix(s.ID, "s-c") {
			t.Fatalf("router did not mint the ID: %q", s.ID)
		}
		perNode[s.Node]++
		ids = append(ids, s.ID)
	}
	if len(perNode) < 2 {
		t.Fatalf("12 sessions all landed on one node: %+v", perNode)
	}
	for name, c := range perNode {
		if c > 8 {
			t.Fatalf("bounded-load placement let %s take %d of 12: %+v", name, c, perNode)
		}
	}

	// Fleet-wide pagination: walk pages of 5, expect all 12 exactly once.
	seen := map[string]bool{}
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 5 {
			t.Fatalf("pagination did not terminate")
		}
		var page api.SessionList
		u := rts.URL + "/v1/sessions?limit=5"
		if cursor != "" {
			u += "&cursor=" + cursor
		}
		if status, _ := doJSON(t, http.MethodGet, u, nil, &page); status != 200 {
			t.Fatalf("list: HTTP %d", status)
		}
		if len(page.Unreachable) != 0 {
			t.Fatalf("nodes unreachable: %v", page.Unreachable)
		}
		for i, s := range page.Sessions {
			if seen[s.ID] {
				t.Fatalf("session %s appeared twice across pages", s.ID)
			}
			seen[s.ID] = true
			if i > 0 && page.Sessions[i-1].ID >= s.ID {
				t.Fatalf("page not sorted: %s >= %s", page.Sessions[i-1].ID, s.ID)
			}
		}
		if page.NextCursor == "" {
			break
		}
		cursor = page.NextCursor
	}
	if len(seen) != 12 {
		t.Fatalf("pagination returned %d sessions, want 12", len(seen))
	}

	// Filters pass through: everything is baseline, nothing is busy.
	var filtered api.SessionList
	doJSON(t, http.MethodGet, rts.URL+"/v1/sessions?policy=baseline&state=idle", nil, &filtered)
	if len(filtered.Sessions) != 12 {
		t.Fatalf("policy/state filter returned %d, want 12", len(filtered.Sessions))
	}

	// Proxy a session read; run a workload through the router.
	var s0 api.Session
	status, hdr := doJSON(t, http.MethodGet, rts.URL+"/v1/sessions/"+ids[0], nil, &s0)
	if status != 200 || hdr.Get("X-AVFS-Node") == "" {
		t.Fatalf("proxy read: HTTP %d, node %q", status, hdr.Get("X-AVFS-Node"))
	}
	if status, _ := doJSON(t, http.MethodPost, rts.URL+"/v1/sessions/"+ids[0]+"/processes",
		api.SubmitRequest{Benchmark: "CG", Threads: 8}, nil); status != 201 {
		t.Fatalf("submit via router: HTTP %d", status)
	}
	var rr api.RunResult
	if status, _ := doJSON(t, http.MethodPost, rts.URL+"/v1/sessions/"+ids[0]+"/run",
		api.RunRequest{Seconds: 2}, &rr); status != 200 || rr.Ticks == 0 {
		t.Fatalf("run via router: HTTP %d, %+v", status, rr)
	}

	// Wrong-node 307: ask a node that does NOT host ids[0] directly. The
	// default client follows the redirect to the router, which proxies to
	// the right node.
	var wrong *node
	for _, n := range nodes {
		if n.name != s0.Node {
			wrong = n
			break
		}
	}
	var viaRedirect api.Session
	status, _ = doJSON(t, http.MethodGet, wrong.srv.URL+"/v1/sessions/"+ids[0], nil, &viaRedirect)
	if status != 200 || viaRedirect.ID != ids[0] {
		t.Fatalf("redirect chase: HTTP %d, got %q want %q", status, viaRedirect.ID, ids[0])
	}

	// Self-healing placement cache: move a session behind the router's
	// back, then read it through the router — the rendezvous probe finds
	// its new home.
	var src *node
	for _, n := range nodes {
		if n.name == s0.Node {
			src = n
		}
	}
	var dst *node
	for _, n := range nodes {
		if n != src {
			dst = n
			break
		}
	}
	if _, err := src.fleet.MigrateSession(ctx, api.MigrateRequest{
		Session: ids[0], TargetName: dst.name, TargetURL: dst.srv.URL,
	}); err != nil {
		t.Fatalf("manual migrate: %v", err)
	}
	var moved api.Session
	status, hdr = doJSON(t, http.MethodGet, rts.URL+"/v1/sessions/"+ids[0], nil, &moved)
	if status != 200 || hdr.Get("X-AVFS-Node") != dst.name {
		t.Fatalf("post-move proxy: HTTP %d via %q, want %q", status, hdr.Get("X-AVFS-Node"), dst.name)
	}

	// Drain a node and rebalance: its sessions migrate to ready peers
	// and stay reachable through the router.
	drained := nodes[2]
	if err := drained.agent.SetDraining(ctx, true); err != nil {
		t.Fatalf("SetDraining: %v", err)
	}
	had := drained.fleet.SessionCount()
	var report api.RebalanceReport
	if status, _ := doJSON(t, http.MethodPost, rts.URL+"/cluster/v1/rebalance", nil, &report); status != 200 {
		t.Fatalf("rebalance: HTTP %d", status)
	}
	if len(report.Errors) != 0 {
		t.Fatalf("rebalance errors: %v", report.Errors)
	}
	if drained.fleet.SessionCount() != 0 {
		t.Fatalf("draining node still holds %d sessions (had %d, moved %d)",
			drained.fleet.SessionCount(), had, len(report.Moved))
	}
	for _, id := range ids {
		if status, _ := doJSON(t, http.MethodGet, rts.URL+"/v1/sessions/"+id, nil, nil); status != 200 {
			t.Fatalf("session %s unreachable after rebalance: HTTP %d", id, status)
		}
	}

	// Aggregated metrics: one valid exposition, node-labeled fleet
	// families plus the router's own.
	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	ms, err := export.ParsePrometheus(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("aggregated exposition invalid: %v", err)
	}
	if _, ok := export.Find(ms, "avfs_router_nodes", nil); !ok {
		t.Fatalf("router families missing from aggregate")
	}
	if _, ok := export.Find(ms, "avfs_fleet_sessions_created_total", map[string]string{"node": "n1"}); !ok {
		t.Fatalf("node-labeled fleet families missing from aggregate: %v", export.Names(ms))
	}

	// Deregister drops a node from the membership view.
	if err := nodes[0].agent.Deregister(ctx); err != nil {
		t.Fatalf("Deregister: %v", err)
	}
	var nl api.NodeList
	doJSON(t, http.MethodGet, rts.URL+"/cluster/v1/nodes", nil, &nl)
	for _, n := range nl.Nodes {
		if n.Name == nodes[0].name {
			t.Fatalf("deregistered node still listed: %+v", nl.Nodes)
		}
	}
}

// TestClusterPowerBudget pins the two-level partition: the router
// splits the cluster budget across nodes by demand, each agent splits
// its share across sessions, and the caps land on the wire as
// power_cap_watts.
func TestClusterPowerBudget(t *testing.T) {
	_, rts, nodes := newCluster(t, 2, 100)
	ctx := context.Background()

	// One busy session on n1, nothing on n2.
	s, err := nodes[0].fleet.Create(api.CreateSessionRequest{Policy: "baseline"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].fleet.Submit(s.ID, api.SubmitRequest{Benchmark: "CG", Threads: 8}); err != nil {
		t.Fatal(err)
	}
	if _, err := nodes[0].fleet.RunSync(ctx, s.ID, api.RunRequest{Seconds: 5}); err != nil {
		t.Fatal(err)
	}

	// Two beats: the first reports demand, the second collects the share
	// partitioned from it.
	for i := 0; i < 2; i++ {
		for _, n := range nodes {
			if err := n.agent.Beat(ctx); err != nil {
				t.Fatalf("beat %s: %v", n.name, err)
			}
		}
	}
	if nodes[0].agent.BudgetW() <= 0 {
		t.Fatalf("demanding node got no budget share")
	}
	// The only demanding session holds (approximately all of) the node's
	// share as its cap.
	got, err := nodes[0].fleet.Get(s.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.PowerCapW <= 0 {
		t.Fatalf("session cap not applied: %+v", got)
	}
	if diff := math.Abs(got.PowerCapW - nodes[0].agent.BudgetW()); diff > 1e-9 {
		t.Fatalf("sole session cap %v != node share %v", got.PowerCapW, nodes[0].agent.BudgetW())
	}

	// The node list reports the partition.
	var nl api.NodeList
	doJSON(t, http.MethodGet, rts.URL+"/cluster/v1/nodes", nil, &nl)
	var total float64
	for _, n := range nl.Nodes {
		total += n.BudgetW
	}
	if math.Abs(total-100) > 1e-6 {
		t.Fatalf("node budget shares sum to %v, want 100: %+v", total, nl.Nodes)
	}
}

// TestAgentMigrateAll drains every session to ready peers on shutdown.
func TestAgentMigrateAll(t *testing.T) {
	_, _, nodes := newCluster(t, 3, 0)
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := nodes[0].fleet.Create(api.CreateSessionRequest{}); err != nil {
			t.Fatal(err)
		}
	}
	if err := nodes[0].agent.SetDraining(ctx, true); err != nil {
		t.Fatal(err)
	}
	moved, errs := nodes[0].agent.MigrateAll(ctx)
	if len(errs) != 0 {
		t.Fatalf("MigrateAll errors: %v", errs)
	}
	if len(moved) != 5 || nodes[0].fleet.SessionCount() != 0 {
		t.Fatalf("moved %d, %d left behind", len(moved), nodes[0].fleet.SessionCount())
	}
	if nodes[1].fleet.SessionCount()+nodes[2].fleet.SessionCount() != 5 {
		t.Fatalf("peers hold %d+%d sessions, want 5 total",
			nodes[1].fleet.SessionCount(), nodes[2].fleet.SessionCount())
	}
}
