package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"avfs/api"
)

// flakyNode is an httptest node whose first failN answers to any request
// are 500s; after that it serves the session.
func flakyNode(t *testing.T, name string, failN int64) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= failN {
			http.Error(w, "node mid-restart", http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-AVFS-Node", name)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.Session{ID: r.PathValue("id"), Node: name})
	}))
	t.Cleanup(ts.Close)
	return ts, &calls
}

// healthyNode always serves the session.
func healthyNode(t *testing.T, name string) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-AVFS-Node", name)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.Session{ID: r.PathValue("id"), Node: name})
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestProxyRetriesFlakyNode: a GET proxied to a node that answers 5xx is
// hedged once against the next rendezvous candidate; non-idempotent
// methods relay the failure as-is.
func TestProxyRetriesFlakyNode(t *testing.T) {
	rt := NewRouter(RouterConfig{HeartbeatTTL: time.Minute})
	flaky, calls := flakyNode(t, "flaky", 1_000_000) // never recovers
	healthy := healthyNode(t, "healthy")
	for name, u := range map[string]string{"flaky": flaky.URL, "healthy": healthy.URL} {
		if _, err := rt.reg.Heartbeat(api.NodeHeartbeat{Name: name, URL: u}); err != nil {
			t.Fatalf("heartbeat %s: %v", name, err)
		}
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	const id = "s-retry-1"
	rt.cachePut(id, "flaky") // force the flaky node to be tried first

	resp, err := http.Get(rts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET through flaky node = %d, body %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-AVFS-Node"); got != "healthy" {
		t.Fatalf("answer came from %q, want healthy", got)
	}
	if got := rt.mRetries.Value(); got != 1 {
		t.Fatalf("retry counter = %d, want 1", got)
	}
	if calls.Load() != 1 {
		t.Fatalf("flaky node saw %d calls, want exactly 1 (retry is once)", calls.Load())
	}
	// The successful answer re-cached the healthy node: the next read
	// never touches the flaky one.
	resp, err = http.Get(rts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls.Load() != 1 {
		t.Fatalf("flaky node probed again after re-cache (%d calls)", calls.Load())
	}
	if got := rt.mRetries.Value(); got != 1 {
		t.Fatalf("retry counter moved without a failure: %d", got)
	}

	// A POST to the flaky node is NOT hedged: the node may have applied
	// it, so the 500 is relayed and the retry counter stays put.
	rt.cachePut(id, "flaky")
	resp, err = http.Post(rts.URL+"/v1/sessions/"+id+"/run", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("POST through flaky node = %d, want relayed 500", resp.StatusCode)
	}
	if got := rt.mRetries.Value(); got != 1 {
		t.Fatalf("non-idempotent request was retried (counter %d)", got)
	}
}

// TestProxyRetriesConnectFailure: a cached node that is gone entirely
// (connection refused) also counts as a retry when a GET fails over.
func TestProxyRetriesConnectFailure(t *testing.T) {
	rt := NewRouter(RouterConfig{HeartbeatTTL: time.Minute})
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close() // connection refused from now on
	healthy := healthyNode(t, "healthy")
	for name, u := range map[string]string{"dead": deadURL, "healthy": healthy.URL} {
		if _, err := rt.reg.Heartbeat(api.NodeHeartbeat{Name: name, URL: u}); err != nil {
			t.Fatalf("heartbeat %s: %v", name, err)
		}
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	const id = "s-retry-2"
	rt.cachePut(id, "dead")
	resp, err := http.Get(rts.URL + "/v1/sessions/" + id)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET past dead node = %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-AVFS-Node"); got != "healthy" {
		t.Fatalf("answer came from %q, want healthy", got)
	}
	if got := rt.mRetries.Value(); got != 1 {
		t.Fatalf("retry counter = %d, want 1", got)
	}
	if got := rt.mNodeErrs.Value(); got != 1 {
		t.Fatalf("node error counter = %d, want 1", got)
	}
}
