package cluster

import (
	"fmt"
	"testing"
	"time"

	"avfs/api"
)

// TestRingMinimalDisruption pins the property migration cost depends
// on: when a node joins, the only keys that move are the ones the new
// node wins, and their count is close to the expected K/n share.
func TestRingMinimalDisruption(t *testing.T) {
	nodes := []string{"n1", "n2", "n3", "n4"}
	const K = 4000
	before := NewRing(nodes)
	after := NewRing(append(append([]string(nil), nodes...), "n5"))

	moved := 0
	for i := 0; i < K; i++ {
		key := fmt.Sprintf("s-c%06d", i)
		a, b := before.Owner(key), after.Owner(key)
		if a == b {
			continue
		}
		moved++
		if b != "n5" {
			t.Fatalf("key %s moved %s -> %s, not to the joining node", key, a, b)
		}
	}
	expect := K / 5
	if moved < expect/2 || moved > expect*2 {
		t.Fatalf("moved %d keys on join, want around K/n = %d", moved, expect)
	}
}

// TestRingLeaveOnlyMovesOrphans: removing a node relocates exactly the
// keys it owned.
func TestRingLeaveOnlyMovesOrphans(t *testing.T) {
	before := NewRing([]string{"n1", "n2", "n3"})
	after := NewRing([]string{"n1", "n2"})
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("k%d", i)
		a, b := before.Owner(key), after.Owner(key)
		if a != "n3" && a != b {
			t.Fatalf("key %s moved %s -> %s though its owner stayed", key, a, b)
		}
	}
}

// TestRingDeterminism: owner is a pure function of (members, key),
// independent of member order and ring instance.
func TestRingDeterminism(t *testing.T) {
	r1 := NewRing([]string{"a", "b", "c"})
	r2 := NewRing([]string{"c", "a", "b", "a"})
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("s%d", i)
		if r1.Owner(key) != r2.Owner(key) {
			t.Fatalf("owner of %s differs across equivalent rings", key)
		}
	}
}

// TestRingRanked: index 0 is the owner, all members appear exactly once.
func TestRingRanked(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"})
	ranked := r.Ranked("some-session")
	if len(ranked) != 4 {
		t.Fatalf("ranked returned %d nodes, want 4", len(ranked))
	}
	if ranked[0] != r.Owner("some-session") {
		t.Fatalf("ranked[0] = %s, owner = %s", ranked[0], r.Owner("some-session"))
	}
	seen := map[string]bool{}
	for _, n := range ranked {
		if seen[n] {
			t.Fatalf("node %s ranked twice", n)
		}
		seen[n] = true
	}
}

// TestRingBoundedLoad: a node at capacity is skipped in favor of the
// next preference, and placement falls back to the plain owner when
// everyone is full.
func TestRingBoundedLoad(t *testing.T) {
	r := NewRing([]string{"a", "b", "c"})
	key := "session-x"
	owner := r.Owner(key)
	ranked := r.Ranked(key)

	load := func(n string) int {
		if n == owner {
			return 10 // at capacity
		}
		return 0
	}
	got := r.OwnerBounded(key, load, 10)
	if got != ranked[1] {
		t.Fatalf("bounded owner = %s, want second preference %s", got, ranked[1])
	}

	full := func(string) int { return 10 }
	if got := r.OwnerBounded(key, full, 10); got != owner {
		t.Fatalf("all-full fallback = %s, want plain owner %s", got, owner)
	}
	if got := r.OwnerBounded(key, load, 0); got != owner {
		t.Fatalf("capacity 0 (bound off) = %s, want plain owner %s", got, owner)
	}
}

// TestRingEmpty: empty ring answers empty, not panics.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil)
	if r.Owner("x") != "" {
		t.Fatalf("empty ring owner = %q, want empty", r.Owner("x"))
	}
	if len(r.Ranked("x")) != 0 {
		t.Fatalf("empty ring ranked non-empty")
	}
}

// TestRegistryLifecycle: epoch bumps on join/drain-flip/expiry/remove,
// not on plain refresh; TTL expiry drops silent nodes.
func TestRegistryLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	r := NewRegistry(5*time.Second, clock)

	e1, err := r.Heartbeat(api.NodeHeartbeat{Name: "n1", URL: "http://a", Sessions: 2})
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := r.Heartbeat(api.NodeHeartbeat{Name: "n1", URL: "http://a", Sessions: 3})
	if e2 != e1 {
		t.Fatalf("plain refresh bumped epoch %d -> %d", e1, e2)
	}
	e3, _ := r.Heartbeat(api.NodeHeartbeat{Name: "n1", URL: "http://a", Draining: true})
	if e3 == e2 {
		t.Fatalf("drain flip did not bump epoch")
	}
	if ready := r.Ready(); len(ready) != 0 {
		t.Fatalf("draining node still listed ready: %+v", ready)
	}

	_, _ = r.Heartbeat(api.NodeHeartbeat{Name: "n2", URL: "http://b"})
	now = now.Add(6 * time.Second) // both stale
	if snap := r.Snapshot(); len(snap) != 0 {
		t.Fatalf("stale nodes survived TTL: %+v", snap)
	}

	if _, err := r.Heartbeat(api.NodeHeartbeat{Name: "", URL: "http://x"}); err == nil {
		t.Fatalf("nameless heartbeat accepted")
	}

	_, _ = r.Heartbeat(api.NodeHeartbeat{Name: "n3", URL: "http://c"})
	before := r.Epoch()
	r.Remove("n3")
	if r.Epoch() == before {
		t.Fatalf("remove did not bump epoch")
	}
	r.Remove("n3") // idempotent
}

// TestPartitionBudget pins the proportional-share rule at both levels
// of the power hierarchy.
func TestPartitionBudget(t *testing.T) {
	shares := PartitionBudget(100, []string{"a", "b"}, []float64{30, 10})
	if got := shares["a"]; got < 74.9 || got > 75.1 {
		t.Fatalf("a share = %v, want 75", got)
	}
	if got := shares["b"]; got < 24.9 || got > 25.1 {
		t.Fatalf("b share = %v, want 25", got)
	}

	eq := PartitionBudget(90, []string{"a", "b", "c"}, []float64{0, 0, 0})
	for n, w := range eq {
		if w < 29.9 || w > 30.1 {
			t.Fatalf("equal split gave %s %v, want 30", n, w)
		}
	}

	if len(PartitionBudget(0, []string{"a"}, []float64{1})) != 0 {
		t.Fatalf("zero budget produced shares")
	}
	if len(PartitionBudget(10, nil, nil)) != 0 {
		t.Fatalf("no consumers produced shares")
	}

	mixed := PartitionBudget(100, []string{"hot", "cold"}, []float64{50, 0})
	if mixed["hot"] < 99.9 || mixed["cold"] != 0 {
		t.Fatalf("mixed demand shares wrong: %+v", mixed)
	}
}
