package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"avfs/api"
	"avfs/internal/telemetry"
	"avfs/internal/telemetry/export"
)

// Router is the stateless cluster front door. It owns no session state
// — only a membership registry fed by node heartbeats and a placement
// cache that is a pure performance hint (every entry can be
// reconstructed by probing nodes in rendezvous order, so a restarted
// router converges without coordination).
//
// Responsibilities:
//   - place new sessions on nodes with bounded-load rendezvous hashing;
//   - proxy per-session requests to the holding node, tagging replies
//     with X-AVFS-Node;
//   - aggregate GET /v1/sessions and GET /metrics across the fleet;
//   - partition the cluster power budget across nodes by demand and
//     hand each node its watt share in heartbeat replies;
//   - rebalance: drain sessions back to their hash-chosen home nodes.
type Router struct {
	cfg    RouterConfig
	reg    *Registry
	client *http.Client

	mu     sync.Mutex
	cache  map[string]string // session ID -> node name (hint, not truth)
	deltas map[string]int    // placements since the node's last heartbeat

	seq atomic.Uint64

	tel         *telemetry.Registry
	mPlacements *telemetry.Counter
	mProxied    *telemetry.Counter
	mProbes     *telemetry.Counter
	mMoves      *telemetry.Counter
	mNodeErrs   *telemetry.Counter
	mRetries    *telemetry.Counter
}

// RouterConfig parameterizes a Router; the zero value works.
type RouterConfig struct {
	// BudgetW is the cluster-wide power budget in watts, partitioned
	// across nodes proportional to demand. 0 disables power capping.
	BudgetW float64
	// HeartbeatTTL expires nodes that stop checking in (default 10s).
	HeartbeatTTL time.Duration
	// LoadFactor bounds placement imbalance: a node is skipped when it
	// holds more than LoadFactor times the mean session count (default
	// 1.25, the classic bounded-load setting).
	LoadFactor float64
	// Clock is injectable for tests; nil means time.Now.
	Clock func() time.Time
	// Client performs node requests; nil gets a 30s-timeout default.
	Client *http.Client
}

// NewRouter builds a router with the given configuration.
func NewRouter(cfg RouterConfig) *Router {
	if cfg.LoadFactor <= 1 {
		cfg.LoadFactor = 1.25
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	r := &Router{
		cfg:    cfg,
		reg:    NewRegistry(cfg.HeartbeatTTL, cfg.Clock),
		client: cfg.Client,
		cache:  map[string]string{},
		deltas: map[string]int{},
		tel:    telemetry.NewRegistry(),
	}
	r.mPlacements = r.tel.Counter("avfs_router_placements_total", "Sessions placed on nodes.")
	r.mProxied = r.tel.Counter("avfs_router_proxied_total", "Requests proxied to nodes.")
	r.mProbes = r.tel.Counter("avfs_router_probe_fallbacks_total", "Placement-cache misses resolved by probing nodes in rendezvous order.")
	r.mMoves = r.tel.Counter("avfs_router_rebalance_moves_total", "Sessions migrated by rebalance.")
	r.mNodeErrs = r.tel.Counter("avfs_router_node_errors_total", "Node requests that failed (unreachable or transport error).")
	r.mRetries = r.tel.Counter("avfs_router_retries_total", "Idempotent GETs retried against the next rendezvous candidate after a connect failure or 5xx answer.")
	r.tel.Gauge("avfs_router_nodes", "Live registered nodes.", func() float64 {
		return float64(len(r.reg.Snapshot()))
	})
	r.tel.Gauge("avfs_router_budget_watts", "Cluster-wide power budget.", func() float64 {
		return r.cfg.BudgetW
	})
	return r
}

// Registry exposes the membership view (tests and the CLI status path).
func (rt *Router) Registry() *Registry { return rt.reg }

// ring builds the placement ring over ready nodes.
func (rt *Router) ring() (*Ring, []api.Node) {
	ready := rt.reg.Ready()
	names := make([]string, len(ready))
	for i, n := range ready {
		names[i] = n.Name
	}
	return NewRing(names), ready
}

// load reports a node's effective session count: last heartbeat plus
// placements the router has routed there since (the heartbeat resets
// the delta, because the node's own count then includes them).
func (rt *Router) load(nodes []api.Node) func(string) int {
	counts := make(map[string]int, len(nodes))
	for _, n := range nodes {
		counts[n.Name] = n.Sessions
	}
	rt.mu.Lock()
	for name, d := range rt.deltas {
		counts[name] += d
	}
	rt.mu.Unlock()
	return func(name string) int { return counts[name] }
}

// place picks the home node for a session ID: bounded-load rendezvous
// over the ready set.
func (rt *Router) place(id string) (api.Node, error) {
	ring, ready := rt.ring()
	if len(ready) == 0 {
		return api.Node{}, fmt.Errorf("no ready nodes")
	}
	total := 0
	for _, n := range ready {
		total += n.Sessions
	}
	capacity := int(rt.cfg.LoadFactor*float64(total+1)/float64(len(ready))) + 1
	owner := ring.OwnerBounded(id, rt.load(ready), capacity)
	for _, n := range ready {
		if n.Name == owner {
			return n, nil
		}
	}
	return api.Node{}, fmt.Errorf("no ready nodes")
}

// mintID mints a router-scoped session ID, making a session's home node
// a pure function of its identity.
func (rt *Router) mintID() string {
	return fmt.Sprintf("s-c%06d", rt.seq.Add(1))
}

// cachePut / cacheDrop / cacheGet manage the placement hint.
func (rt *Router) cachePut(id, node string) {
	rt.mu.Lock()
	rt.cache[id] = node
	rt.mu.Unlock()
}

func (rt *Router) cacheDrop(id string) {
	rt.mu.Lock()
	delete(rt.cache, id)
	rt.mu.Unlock()
}

func (rt *Router) cacheGet(id string) (string, bool) {
	rt.mu.Lock()
	n, ok := rt.cache[id]
	rt.mu.Unlock()
	return n, ok
}

// Handler returns the router's HTTP surface: the cluster control plane
// under /cluster/v1 plus a fleet-wide view of the node v1 API.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()

	// --- cluster control plane ---

	mux.HandleFunc("POST /cluster/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		var hb api.NodeHeartbeat
		if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&hb); err != nil {
			writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest, "bad heartbeat body: "+err.Error())
			return
		}
		epoch, err := rt.reg.Heartbeat(hb)
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest, err.Error())
			return
		}
		rt.mu.Lock()
		rt.deltas[hb.Name] = 0
		rt.mu.Unlock()
		shares := rt.partition()
		rt.reg.SetBudgets(shares)
		writeJSON(w, http.StatusOK, api.HeartbeatReply{
			Epoch:   epoch,
			BudgetW: shares[hb.Name],
			Nodes:   rt.reg.Snapshot(),
		})
	})

	mux.HandleFunc("GET /cluster/v1/nodes", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.NodeList{
			Nodes:   rt.reg.Snapshot(),
			Epoch:   rt.reg.Epoch(),
			BudgetW: rt.cfg.BudgetW,
		})
	})

	mux.HandleFunc("DELETE /cluster/v1/nodes/{name}", func(w http.ResponseWriter, r *http.Request) {
		rt.reg.Remove(r.PathValue("name"))
		w.WriteHeader(http.StatusNoContent)
	})

	mux.HandleFunc("POST /cluster/v1/rebalance", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, rt.Rebalance(r.Context()))
	})

	// --- fleet-wide v1 surface ---

	mux.HandleFunc("POST /v1/sessions", rt.handleCreate)
	mux.HandleFunc("GET /v1/sessions", rt.handleList)
	mux.HandleFunc("/v1/sessions/{id}", rt.handleProxy)
	mux.HandleFunc("/v1/sessions/{id}/{rest...}", rt.handleProxy)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if len(rt.reg.Ready()) == 0 {
			writeAPIError(w, http.StatusServiceUnavailable, api.CodeDraining, "no ready nodes registered")
			return
		}
		w.WriteHeader(http.StatusOK)
		_, _ = io.WriteString(w, "ok\n")
	})
	return mux
}

// partition computes every ready node's share of the cluster budget,
// proportional to last-reported demand.
func (rt *Router) partition() map[string]float64 {
	ready := rt.reg.Ready()
	names := make([]string, len(ready))
	demands := make([]float64, len(ready))
	for i, n := range ready {
		names[i], demands[i] = n.Name, n.DemandW
	}
	return PartitionBudget(rt.cfg.BudgetW, names, demands)
}

// handleCreate places a session and forwards the create to its home
// node. The router mints the ID (unless the caller pre-assigned one) so
// placement is a pure function of identity; on a full or draining
// refusal it walks the rendezvous preference order before giving up.
func (rt *Router) handleCreate(w http.ResponseWriter, r *http.Request) {
	var req api.CreateSessionRequest
	raw, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest, err.Error())
		return
	}
	if len(bytes.TrimSpace(raw)) > 0 {
		if err := json.Unmarshal(raw, &req); err != nil {
			writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest, "bad JSON body: "+err.Error())
			return
		}
	}
	if req.ID == "" {
		req.ID = rt.mintID()
	}
	body, err := json.Marshal(&req)
	if err != nil {
		writeAPIError(w, http.StatusInternalServerError, api.CodeInternal, err.Error())
		return
	}

	ring, ready := rt.ring()
	if len(ready) == 0 {
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeDraining, "no ready nodes registered")
		return
	}
	urls := make(map[string]string, len(ready))
	for _, n := range ready {
		urls[n.Name] = n.URL
	}
	preferred, err := rt.place(req.ID)
	if err != nil {
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeDraining, err.Error())
		return
	}
	// Preferred node first, then the remaining preference order: a node
	// that refuses with fleet_full/draining (or is unreachable) is not
	// the end of the story while peers have room.
	order := []string{preferred.Name}
	for _, name := range ring.Ranked(req.ID) {
		if name != preferred.Name {
			order = append(order, name)
		}
	}
	var lastStatus int
	var lastBody []byte
	var lastHeader http.Header
	for _, name := range order {
		status, hdr, respBody, err := rt.forward(r, http.MethodPost, urls[name]+"/v1/sessions", body)
		if err != nil {
			rt.mNodeErrs.Inc()
			continue
		}
		if status == http.StatusServiceUnavailable && errCodeOf(respBody) != "" {
			lastStatus, lastBody, lastHeader = status, respBody, hdr
			continue // fleet_full / draining / closed: try the next node
		}
		if status/100 == 2 {
			rt.cachePut(req.ID, name)
			rt.mu.Lock()
			rt.deltas[name]++
			rt.mu.Unlock()
			rt.mPlacements.Inc()
		}
		relay(w, status, hdr, respBody)
		return
	}
	if lastStatus != 0 {
		relay(w, lastStatus, lastHeader, lastBody)
		return
	}
	writeAPIError(w, http.StatusBadGateway, api.CodeInternal, "every ready node is unreachable")
}

// handleList aggregates GET /v1/sessions across the fleet: fan out the
// same cursor/filters to every node, merge-sort by ID, cut at the limit.
// Nodes that cannot be reached are named in the reply's unreachable list
// instead of silently shrinking the page.
func (rt *Router) handleList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.RawQuery
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest, "limit must be a non-negative integer")
			return
		}
		limit = n
	}
	nodes := rt.reg.Snapshot() // draining nodes still hold sessions
	out := api.SessionList{Sessions: []api.Session{}}
	truncated := false
	for _, n := range nodes {
		u := n.URL + "/v1/sessions"
		if q != "" {
			u += "?" + q
		}
		status, _, body, err := rt.forward(r, http.MethodGet, u, nil)
		if err != nil || status != http.StatusOK {
			rt.mNodeErrs.Inc()
			out.Unreachable = append(out.Unreachable, n.Name)
			continue
		}
		var page api.SessionList
		if json.Unmarshal(body, &page) != nil {
			out.Unreachable = append(out.Unreachable, n.Name)
			continue
		}
		if page.NextCursor != "" {
			truncated = true
		}
		out.Sessions = append(out.Sessions, page.Sessions...)
	}
	sort.Slice(out.Sessions, func(i, j int) bool { return out.Sessions[i].ID < out.Sessions[j].ID })
	if limit > 0 && len(out.Sessions) > limit {
		out.Sessions = out.Sessions[:limit]
		truncated = true
	}
	if truncated && len(out.Sessions) > 0 {
		out.NextCursor = out.Sessions[len(out.Sessions)-1].ID
	}
	writeJSON(w, http.StatusOK, out)
}

// handleProxy forwards a per-session request to the node holding it.
// The placement cache is tried first; on a miss — or when the cached
// node answers 404 session_not_found, which happens after migrations
// and for forked children minted on their parent's node — the router
// probes nodes in rendezvous preference order and re-caches the hit.
func (rt *Router) handleProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	nodes := rt.reg.Snapshot()
	if len(nodes) == 0 {
		writeAPIError(w, http.StatusServiceUnavailable, api.CodeDraining, "no nodes registered")
		return
	}
	urls := make(map[string]string, len(nodes))
	names := make([]string, 0, len(nodes))
	for _, n := range nodes {
		urls[n.Name] = n.URL
		names = append(names, n.Name)
	}
	var order []string
	if cached, ok := rt.cacheGet(id); ok {
		if _, live := urls[cached]; live {
			order = append(order, cached)
		}
	}
	for _, name := range NewRing(names).Ranked(id) {
		if len(order) > 0 && name == order[0] {
			continue
		}
		order = append(order, name)
	}

	var body []byte
	if r.Body != nil {
		var err error
		body, err = io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
		if err != nil {
			writeAPIError(w, http.StatusBadRequest, api.CodeInvalidRequest, err.Error())
			return
		}
	}
	target := r.URL.RequestURI()

	probed := false
	retried := false
	var notFoundStatus int
	var notFoundHeader http.Header
	var notFoundBody []byte
	var failStatus int
	var failHeader http.Header
	var failBody []byte
	for i, name := range order {
		if i > 0 {
			probed = true
		}
		status, hdr, respBody, err := rt.forward(r, r.Method, urls[name]+target, body)
		if err != nil {
			rt.mNodeErrs.Inc()
			if r.Method == http.MethodGet && !retried && i+1 < len(order) {
				retried = true
				rt.mRetries.Inc()
			}
			continue
		}
		if status == http.StatusNotFound && errCodeOf(respBody) == api.CodeSessionNotFound {
			rt.cacheDrop(id)
			notFoundStatus, notFoundHeader, notFoundBody = status, hdr, respBody
			continue
		}
		if status >= 500 && r.Method == http.MethodGet && !retried && i+1 < len(order) {
			// Hedge an idempotent read once against the next rendezvous
			// candidate: a node answering 5xx may be mid-restart while a
			// peer already hosts the session (post-migration). Non-GET
			// requests are relayed as-is — the node may have applied them.
			retried = true
			rt.mRetries.Inc()
			failStatus, failHeader, failBody = status, hdr, respBody
			continue
		}
		rt.cachePut(id, name)
		rt.mProxied.Inc()
		if probed {
			rt.mProbes.Inc()
		}
		if r.Method == http.MethodDelete && r.PathValue("rest") == "" && status/100 == 2 {
			rt.cacheDrop(id)
		}
		relay(w, status, hdr, respBody)
		return
	}
	if failStatus != 0 {
		// The hedged-away 5xx came from the likeliest owner; the 404s, if
		// any, from nodes that never knew the session. Relay the former.
		relay(w, failStatus, failHeader, failBody)
		return
	}
	if notFoundStatus != 0 {
		relay(w, notFoundStatus, notFoundHeader, notFoundBody)
		return
	}
	writeAPIError(w, http.StatusBadGateway, api.CodeInternal, "no node answered for session "+id)
}

// handleMetrics merges every node's Prometheus exposition into one:
// each sample re-tagged with a node label, families re-grouped so each
// TYPE line appears exactly once (naive concatenation would repeat TYPE
// lines, which the exposition format forbids). The router's own
// avfs_router_* families come first; node family names never collide
// with them.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type fam struct {
		kind    string
		samples []export.ParsedMetric
	}
	fams := map[string]*fam{}
	var order []string
	for _, n := range rt.reg.Snapshot() {
		status, _, body, err := rt.forward(r, http.MethodGet, n.URL+"/metrics", nil)
		if err != nil || status != http.StatusOK {
			rt.mNodeErrs.Inc()
			continue
		}
		ms, typed, err := export.ParsePrometheusTyped(bytes.NewReader(body))
		if err != nil {
			rt.mNodeErrs.Inc()
			continue
		}
		for _, m := range ms {
			family := m.Name
			kind, ok := typed[family]
			if !ok {
				for _, suffix := range []string{"_bucket", "_sum", "_count"} {
					base := strings.TrimSuffix(m.Name, suffix)
					if base != m.Name && typed[base] == "histogram" {
						family, kind = base, "histogram"
						break
					}
				}
			}
			f, seen := fams[family]
			if !seen {
				f = &fam{kind: kind}
				fams[family] = f
				order = append(order, family)
			}
			labels := make(map[string]string, len(m.Labels)+1)
			for k, v := range m.Labels {
				labels[k] = v
			}
			labels["node"] = n.Name
			f.samples = append(f.samples, export.ParsedMetric{Name: m.Name, Labels: labels, Value: m.Value})
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	var buf bytes.Buffer
	_ = export.Prometheus(&buf, rt.tel)
	sort.Strings(order)
	for _, family := range order {
		f := fams[family]
		fmt.Fprintf(&buf, "# TYPE %s %s\n", family, f.kind)
		for _, m := range f.samples {
			export.WriteSample(&buf, m.Name, m.Labels, m.Value)
		}
	}
	_, _ = w.Write(buf.Bytes())
}

// forward performs one node request, tagging it X-AVFS-Proxied so the
// node answers in place instead of bouncing the caller back through the
// router with a redirect.
func (rt *Router) forward(src *http.Request, method, url string, body []byte) (int, http.Header, []byte, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(src.Context(), method, url, rd)
	if err != nil {
		return 0, nil, nil, err
	}
	req.Header.Set("X-AVFS-Proxied", "router")
	if ct := src.Header.Get("Content-Type"); ct != "" && body != nil {
		req.Header.Set("Content-Type", ct)
	} else if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if acc := src.Header.Get("Accept"); acc != "" {
		req.Header.Set("Accept", acc)
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return 0, nil, nil, err
	}
	return resp.StatusCode, resp.Header, respBody, nil
}

// relay copies a node response to the caller, preserving the headers
// that carry contract semantics (content type, node attribution,
// retry hints).
func relay(w http.ResponseWriter, status int, hdr http.Header, body []byte) {
	for _, k := range []string{"Content-Type", "X-AVFS-Node", "Retry-After", "Content-Disposition"} {
		if v := hdr.Get(k); v != "" {
			w.Header().Set(k, v)
		}
	}
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// errCodeOf extracts the machine-readable code from a wire error body,
// or "" if the body isn't one.
func errCodeOf(body []byte) string {
	var e api.Error
	if json.Unmarshal(body, &e) != nil {
		return ""
	}
	return e.Code
}

// writeJSON writes a JSON success body.
func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(body)
}

// writeAPIError writes a wire error with the given status and code.
func writeAPIError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(&api.Error{Code: code, Message: msg})
}

// Rebalance walks every node's sessions and migrates each one whose
// rendezvous owner differs from where it lives — after a join this is
// exactly the expected K/n sessions the new node now wins, and for a
// draining node it is all of them. Sessions with runs in flight refuse
// migration (the node answers conflict); they are reported as errors
// and picked up by the next rebalance.
func (rt *Router) Rebalance(ctx context.Context) api.RebalanceReport {
	nodes := rt.reg.Snapshot()
	ring, _ := rt.ring()
	report := api.RebalanceReport{Nodes: len(nodes), Moved: []api.Migration{}}
	readyURLs := map[string]string{}
	for _, n := range nodes {
		if n.State == api.NodeReady {
			readyURLs[n.Name] = n.URL
		}
	}
	for _, n := range nodes {
		ids, err := rt.listNodeSessions(ctx, n.URL)
		if err != nil {
			report.Errors = append(report.Errors, fmt.Sprintf("%s: list: %v", n.Name, err))
			continue
		}
		for _, id := range ids {
			report.Sessions++
			owner := ring.Owner(id)
			if owner == "" {
				report.Errors = append(report.Errors, fmt.Sprintf("%s: no ready owner", id))
				continue
			}
			if owner == n.Name && n.State == api.NodeReady {
				continue
			}
			if owner == n.Name {
				// Draining node that is still the hash owner: pick the best
				// ready alternative.
				owner = ""
				for _, cand := range ring.Ranked(id) {
					if cand != n.Name {
						owner = cand
						break
					}
				}
				if owner == "" {
					report.Errors = append(report.Errors, fmt.Sprintf("%s: no peer to drain to", id))
					continue
				}
			}
			mig, err := rt.migrate(ctx, n.URL, api.MigrateRequest{
				Session:    id,
				TargetName: owner,
				TargetURL:  readyURLs[owner],
			})
			if err != nil {
				report.Errors = append(report.Errors, fmt.Sprintf("%s: %v", id, err))
				continue
			}
			rt.cachePut(id, owner)
			rt.mMoves.Inc()
			report.Moved = append(report.Moved, mig)
		}
	}
	return report
}

// listNodeSessions pages through one node's session IDs.
func (rt *Router) listNodeSessions(ctx context.Context, nodeURL string) ([]string, error) {
	var ids []string
	cursor := ""
	for {
		u := nodeURL + "/v1/sessions?limit=500"
		if cursor != "" {
			u += "&cursor=" + cursor
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
		if err != nil {
			return nil, err
		}
		req.Header.Set("X-AVFS-Proxied", "router")
		resp, err := rt.client.Do(req)
		if err != nil {
			return nil, err
		}
		body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(body))
		}
		var page api.SessionList
		if err := json.Unmarshal(body, &page); err != nil {
			return nil, err
		}
		for _, s := range page.Sessions {
			ids = append(ids, s.ID)
		}
		if page.NextCursor == "" {
			return ids, nil
		}
		cursor = page.NextCursor
	}
}

// migrate asks a source node to ship one session to a peer.
func (rt *Router) migrate(ctx context.Context, sourceURL string, mr api.MigrateRequest) (api.Migration, error) {
	body, err := json.Marshal(&mr)
	if err != nil {
		return api.Migration{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		sourceURL+"/v1/cluster/migrate", bytes.NewReader(body))
	if err != nil {
		return api.Migration{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-AVFS-Proxied", "router")
	resp, err := rt.client.Do(req)
	if err != nil {
		return api.Migration{}, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return api.Migration{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return api.Migration{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var mig api.Migration
	if err := json.Unmarshal(raw, &mig); err != nil {
		return api.Migration{}, err
	}
	return mig, nil
}
