package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"avfs/api"
)

// clusterBenchReport is the JSON summary scripts/check.sh records as
// BENCH_cluster.json.
type clusterBenchReport struct {
	Nodes             int     `json:"nodes"`
	ReadReqPerSec     float64 `json:"read_req_per_sec"`
	TargetReqPerSec   float64 `json:"target_req_per_sec"`
	SingleNodeFloor   float64 `json:"single_node_floor_req_per_sec"`
	ScaleFactor       float64 `json:"scale_factor"`
	Requests          int64   `json:"requests"`
	Clients           int     `json:"clients"`
	Migrations        int     `json:"migrations"`
	MigrationP99MS    float64 `json:"migration_p99_ms"`
	MigrationMaxMS    float64 `json:"migration_max_ms"`
	MigrationBudgetMS float64 `json:"migration_budget_ms"`
	MigrationMeanMS   float64 `json:"migration_mean_ms"`
	UnreachableProbes int64   `json:"unreachable_probes"`
}

// singleNodeFloor reads the single-node control-plane floor from the
// BENCH_service.json run earlier in the same check (path in
// AVFS_BENCH_SERVICE_JSON); absent that, the gate's documented floor.
func singleNodeFloor() float64 {
	const fallback = 1000.0
	path := os.Getenv("AVFS_BENCH_SERVICE_JSON")
	if path == "" {
		return fallback
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return fallback
	}
	var rep struct {
		FloorReqPerSec float64 `json:"floor_req_per_sec"`
	}
	if json.Unmarshal(raw, &rep) != nil || rep.FloorReqPerSec <= 0 {
		return fallback
	}
	return rep.FloorReqPerSec
}

// TestClusterScaleBudget is the CI gate for horizontal scale-out: a
// 3-node fleet behind the router must sustain at least 2.5× the
// single-node read floor on router-proxied session reads, and
// drain-to-peer migrations of loaded sessions must complete under
// 250 ms at p99. It only runs when AVFS_BENCH_CLUSTER_OUT names the
// JSON report path (scripts/check.sh sets it).
func TestClusterScaleBudget(t *testing.T) {
	out := os.Getenv("AVFS_BENCH_CLUSTER_OUT")
	if out == "" {
		t.Skip("set AVFS_BENCH_CLUSTER_OUT=<file> to run the cluster scale gate")
	}
	ctx := context.Background()
	_, rts, nodes := newCluster(t, 3, 0)

	// Load every node with one busy session, created through the router
	// so the IDs carry real placements.
	var ids []string
	for len(ids) < 6 {
		var s api.Session
		status, _ := doJSON(t, http.MethodPost, rts.URL+"/v1/sessions",
			api.CreateSessionRequest{Policy: "optimal"}, &s)
		if status != 201 {
			t.Fatalf("create: HTTP %d", status)
		}
		ids = append(ids, s.ID)
	}
	for _, n := range nodes {
		for _, id := range n.fleet.SessionIDs() {
			if _, err := n.fleet.Submit(id, api.SubmitRequest{Benchmark: "CG", Threads: 8}); err != nil {
				t.Fatal(err)
			}
			if _, err := n.fleet.RunSync(ctx, id, api.RunRequest{Seconds: 10}); err != nil {
				t.Fatal(err)
			}
		}
	}

	floor := singleNodeFloor()
	target := 2.5 * floor
	clients := runtime.GOMAXPROCS(0) * 3
	if clients > 12 {
		clients = 12
	}
	rep := clusterBenchReport{
		Nodes:             3,
		TargetReqPerSec:   target,
		SingleNodeFloor:   floor,
		Clients:           clients,
		MigrationBudgetMS: 250,
	}

	// Read throughput through the router, best of 3 windows.
	for round := 0; round < 3; round++ {
		got, reqs := measureRouterReads(t, rts.URL, ids, clients, 500*time.Millisecond)
		t.Logf("round %d: %.0f req/s (%d requests, %d clients)", round, got, reqs, clients)
		if got > rep.ReadReqPerSec {
			rep.ReadReqPerSec = got
			rep.Requests = reqs
		}
		if rep.ReadReqPerSec >= target {
			break
		}
	}
	rep.ScaleFactor = rep.ReadReqPerSec / floor

	// Migration latency: bounce each loaded session across nodes and
	// collect the end-to-end durations (snapshot → ship → restore).
	var durs []float64
	for hop := 0; hop < 3; hop++ {
		for _, id := range ids {
			var src, dst *node
			for _, n := range nodes {
				if _, err := n.fleet.Get(id); err == nil {
					src = n
				}
			}
			if src == nil {
				t.Fatalf("session %s lost", id)
			}
			for _, n := range nodes {
				if n != src {
					dst = n
					break
				}
			}
			mig, err := src.fleet.MigrateSession(ctx, api.MigrateRequest{
				Session: id, TargetName: dst.name, TargetURL: dst.srv.URL,
			})
			if err != nil {
				t.Fatalf("migrate %s: %v", id, err)
			}
			durs = append(durs, mig.DurationMS)
		}
	}
	sort.Float64s(durs)
	rep.Migrations = len(durs)
	rep.MigrationMaxMS = durs[len(durs)-1]
	idx := int(float64(len(durs))*0.99+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(durs) {
		idx = len(durs) - 1
	}
	rep.MigrationP99MS = durs[idx]
	var sum float64
	for _, d := range durs {
		sum += d
	}
	rep.MigrationMeanMS = sum / float64(len(durs))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("cluster read path: %.0f req/s (target %.0f = 2.5 x %.0f single-node floor); "+
		"%d migrations p99 %.1f ms (budget 250 ms), report written to %s\n",
		rep.ReadReqPerSec, target, floor, rep.Migrations, rep.MigrationP99MS, out)

	if rep.ReadReqPerSec < target {
		t.Errorf("3-node router-proxied reads sustain %.0f req/s, want >= %.0f (2.5 x single-node floor %.0f)",
			rep.ReadReqPerSec, target, floor)
	}
	if rep.MigrationP99MS >= 250 {
		t.Errorf("migration p99 %.1f ms, want < 250 ms (max %.1f ms over %d moves)",
			rep.MigrationP99MS, rep.MigrationMaxMS, rep.Migrations)
	}
}

// measureRouterReads hammers router-proxied session reads round-robin
// over the given IDs from `clients` goroutines for one wall window.
func measureRouterReads(t *testing.T, base string, ids []string, clients int, window time.Duration) (float64, int64) {
	t.Helper()
	var count atomic.Int64
	var failed atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := seed
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(base + "/v1/sessions/" + ids[i%len(ids)])
				i++
				if err != nil {
					failed.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failed.Add(1)
					continue
				}
				count.Add(1)
			}
		}(c)
	}
	start := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if f := failed.Load(); f > 0 {
		t.Fatalf("%d router reads failed during the measurement window", f)
	}
	return float64(count.Load()) / elapsed, count.Load()
}
