package cluster

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"avfs/api"
)

// Registry is the router's view of cluster membership. Nodes announce
// themselves with heartbeats carrying their URL, session count and
// power demand; a node whose heartbeat goes stale past the TTL is
// marked down and drops out of placement. Every membership change —
// join, leave, drain toggle, expiry — bumps an epoch so agents can
// detect that the peer set shifted without diffing lists.
type Registry struct {
	mu    sync.Mutex
	ttl   time.Duration
	clock func() time.Time
	epoch int64
	nodes map[string]*member
}

type member struct {
	name     string
	url      string
	sessions int
	demandW  float64
	budgetW  float64
	draining bool
	lastBeat time.Time
}

// NewRegistry builds a registry with the given heartbeat TTL. clock is
// injectable for tests; nil means time.Now.
func NewRegistry(ttl time.Duration, clock func() time.Time) *Registry {
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	if clock == nil {
		clock = time.Now
	}
	return &Registry{ttl: ttl, clock: clock, nodes: map[string]*member{}}
}

// Heartbeat registers or refreshes a node and returns the current
// epoch. A first beat, a URL change, a rejoin after expiry, or a
// drain-state flip all bump the epoch; a plain refresh does not.
func (r *Registry) Heartbeat(hb api.NodeHeartbeat) (int64, error) {
	if hb.Name == "" || hb.URL == "" {
		return 0, fmt.Errorf("heartbeat needs name and url")
	}
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	m, ok := r.nodes[hb.Name]
	if !ok {
		m = &member{name: hb.Name}
		r.nodes[hb.Name] = m
		r.epoch++
	}
	if m.url != hb.URL || m.draining != hb.Draining {
		r.epoch++
	}
	m.url = hb.URL
	m.sessions = hb.Sessions
	m.demandW = hb.DemandW
	m.draining = hb.Draining
	m.lastBeat = now
	return r.epoch, nil
}

// Remove deregisters a node (clean shutdown). Unknown names are a
// no-op so deregistration is idempotent.
func (r *Registry) Remove(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[name]; ok {
		delete(r.nodes, name)
		r.epoch++
	}
}

// expireLocked drops members whose heartbeat is stale past the TTL.
func (r *Registry) expireLocked(now time.Time) {
	for name, m := range r.nodes {
		if now.Sub(m.lastBeat) > r.ttl {
			delete(r.nodes, name)
			r.epoch++
		}
	}
}

// SetBudgets records the per-node watt shares computed by the budget
// partition so the node list reports them. Unknown names are skipped.
func (r *Registry) SetBudgets(shares map[string]float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, w := range shares {
		if m, ok := r.nodes[name]; ok {
			m.budgetW = w
		}
	}
}

// Epoch returns the current membership epoch.
func (r *Registry) Epoch() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// Snapshot returns every live member as wire nodes, sorted by name,
// after expiring stale ones.
func (r *Registry) Snapshot() []api.Node {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	out := make([]api.Node, 0, len(r.nodes))
	for _, m := range r.nodes {
		state := api.NodeReady
		if m.draining {
			state = api.NodeDraining
		}
		out = append(out, api.Node{
			Name:            m.name,
			URL:             m.url,
			State:           state,
			Sessions:        m.sessions,
			DemandW:         m.demandW,
			BudgetW:         m.budgetW,
			HeartbeatAgeSec: now.Sub(m.lastBeat).Seconds(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Ready returns the nodes eligible for new placements: live and not
// draining.
func (r *Registry) Ready() []api.Node {
	all := r.Snapshot()
	out := all[:0]
	for _, n := range all {
		if n.State == api.NodeReady {
			out = append(out, n)
		}
	}
	return out
}

// URL resolves a node name to its announced base URL; ok is false for
// unknown or expired nodes.
func (r *Registry) URL(name string) (string, bool) {
	now := r.clock()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.expireLocked(now)
	m, ok := r.nodes[name]
	if !ok {
		return "", false
	}
	return m.url, true
}
