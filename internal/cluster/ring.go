// Package cluster is the horizontal scale-out layer (ROADMAP item 2):
// a stateless router that places sessions on nodes with rendezvous
// hashing, a node registry fed by heartbeats, a cluster-wide power
// budget partitioned across nodes proportional to demand, and the node
// agent that keeps a fleet registered and applies its watt share.
//
// The package sits strictly above internal/service: cluster imports
// service (the agent holds a *service.Fleet), never the reverse, so a
// single-node deployment carries no cluster code.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Ring places keys on nodes with rendezvous (highest-random-weight)
// hashing. Each (node, key) pair gets an independent pseudo-random
// score; the key lives on the node scoring highest. Membership changes
// disturb the minimum possible set of placements: when a node joins,
// the only keys that move are the ones the new node now wins (an
// expected K/n of them); when a node leaves, only its own keys move.
// That minimal-disruption property is what the migration path relies
// on — a rebalance after a join drains just the reclaimed sessions.
//
// A Ring is an immutable value over a sorted copy of the member list;
// build a fresh one per placement decision (construction is a small
// sort, placement is O(n) per key — fine for the node counts a single
// router fronts).
type Ring struct {
	nodes []string
}

// NewRing builds a ring over the given node names. Order does not
// matter; duplicates are collapsed.
func NewRing(nodes []string) *Ring {
	seen := make(map[string]bool, len(nodes))
	out := make([]string, 0, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		out = append(out, n)
	}
	sort.Strings(out)
	return &Ring{nodes: out}
}

// Nodes returns the sorted member list.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// score is the rendezvous weight of key on node: a 64-bit FNV-1a over
// node + separator + key, passed through a splitmix64-style finalizer.
// The separator byte keeps ("ab","c") and ("a","bc") from colliding;
// the finalizer matters because raw FNV-1a folds a trailing-byte
// difference in with a single multiply, so sequential session IDs
// (s-c000001, s-c000002, ...) would rank every node identically and
// pile onto one of them.
func score(node, key string) uint64 {
	f := fnv.New64a()
	_, _ = f.Write([]byte(node))
	_, _ = f.Write([]byte{0xff})
	_, _ = f.Write([]byte(key))
	h := f.Sum64()
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// Owner returns the node that owns key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	best := ""
	var bestScore uint64
	for _, n := range r.nodes {
		s := score(n, key)
		// Lexicographic tie-break keeps placement deterministic even in
		// the astronomically unlikely event of equal hashes.
		if best == "" || s > bestScore || (s == bestScore && n < best) {
			best, bestScore = n, s
		}
	}
	return best
}

// Ranked returns all nodes ordered by descending preference for key.
// Index 0 is Owner(key); the rest is the failover/probe order the
// router walks when the preferred node is full or doesn't actually
// hold the session (forked children live on their parent's node).
func (r *Ring) Ranked(key string) []string {
	type ns struct {
		node string
		s    uint64
	}
	all := make([]ns, len(r.nodes))
	for i, n := range r.nodes {
		all[i] = ns{n, score(n, key)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].node < all[j].node
	})
	out := make([]string, len(all))
	for i, e := range all {
		out[i] = e.node
	}
	return out
}

// OwnerBounded is Owner with the bounded-load refinement: walk the
// preference order and take the first node whose current load is under
// capacity, so one hot node can't absorb every new session while the
// rest idle. load reports a node's current session count; capacity is
// the per-node ceiling (<= 0 disables the bound). If every node is at
// capacity the plain owner is returned — admission control (fleet
// MaxSessions) is the hard limit, the bound only spreads load.
func (r *Ring) OwnerBounded(key string, load func(node string) int, capacity int) string {
	if capacity <= 0 || load == nil {
		return r.Owner(key)
	}
	ranked := r.Ranked(key)
	for _, n := range ranked {
		if load(n) < capacity {
			return n
		}
	}
	if len(ranked) == 0 {
		return ""
	}
	return ranked[0]
}
