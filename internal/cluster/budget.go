package cluster

// PartitionBudget splits a total watt budget across consumers
// proportionally to their demand. It is the single partition rule used
// at both levels of the cluster power hierarchy: the router splits the
// global budget across nodes by node demand, and each node agent
// splits its share across sessions by session demand — the same
// proportional-share arithmetic the paper's cluster-level governor
// applies, two levels deep.
//
// names and demands are parallel; the returned map carries one share
// per name. Rules:
//   - total <= 0 or no consumers → empty map (no budget to enforce).
//   - all demands <= 0 (nothing has drawn power yet) → equal split, so
//     fresh sessions still get a cap instead of an unbounded window.
//   - otherwise shares are total * demand_i / sum(demands), with
//     zero-demand consumers getting a zero share — they'll pick up a
//     real share on the next repartition once they draw power. A zero
//     share is delivered as a tiny positive cap by the applier, never
//     as "no cap".
func PartitionBudget(total float64, names []string, demands []float64) map[string]float64 {
	if total <= 0 || len(names) == 0 || len(names) != len(demands) {
		return map[string]float64{}
	}
	var sum float64
	for _, d := range demands {
		if d > 0 {
			sum += d
		}
	}
	out := make(map[string]float64, len(names))
	if sum <= 0 {
		share := total / float64(len(names))
		for _, n := range names {
			out[n] = share
		}
		return out
	}
	for i, n := range names {
		d := demands[i]
		if d < 0 {
			d = 0
		}
		out[n] = total * d / sum
	}
	return out
}
