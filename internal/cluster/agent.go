package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"avfs/api"
	"avfs/internal/service"
)

// Agent is the node side of cluster membership: it keeps one fleet
// registered with the router through periodic heartbeats, applies the
// node's watt share of the cluster power budget to its sessions, and
// drains every session to its rendezvous-chosen peer on shutdown. The
// fleet itself stays cluster-unaware — the agent only uses its public
// surface (SessionDemands, SetSessionPowerCap, MigrateSession,
// SetRedirect).
type Agent struct {
	fleet     *service.Fleet
	routerURL string
	name      string
	advertise string
	interval  time.Duration
	client    *http.Client

	mu       sync.Mutex
	draining bool
	epoch    int64
	budgetW  float64
	peers    []api.Node

	stop chan struct{}
	done chan struct{}
}

// AgentConfig wires an Agent to its fleet and router.
type AgentConfig struct {
	Fleet *service.Fleet
	// RouterURL is the router's base URL (scheme://host:port).
	RouterURL string
	// Name is the node's cluster identity; it should match the fleet's
	// NodeName so session attribution and placement agree.
	Name string
	// AdvertiseURL is the base URL peers and the router reach this node
	// at.
	AdvertiseURL string
	// Interval is the heartbeat period (default 2s).
	Interval time.Duration
	// Client performs router and peer requests; nil gets a 10s default.
	Client *http.Client
}

// NewAgent builds an agent; call Start to begin heartbeating.
func NewAgent(cfg AgentConfig) (*Agent, error) {
	if cfg.Fleet == nil || cfg.RouterURL == "" || cfg.Name == "" || cfg.AdvertiseURL == "" {
		return nil, fmt.Errorf("agent needs fleet, router url, name and advertise url")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	return &Agent{
		fleet:     cfg.Fleet,
		routerURL: cfg.RouterURL,
		name:      cfg.Name,
		advertise: cfg.AdvertiseURL,
		interval:  cfg.Interval,
		client:    cfg.Client,
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}, nil
}

// Start registers immediately, points the fleet's wrong-node redirects
// at the router, and begins the heartbeat loop.
func (a *Agent) Start() error {
	a.fleet.SetRedirect(a.routerURL)
	if err := a.Beat(context.Background()); err != nil {
		return fmt.Errorf("initial heartbeat: %w", err)
	}
	go a.loop()
	return nil
}

func (a *Agent) loop() {
	defer close(a.done)
	t := time.NewTicker(a.interval)
	defer t.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-t.C:
			_ = a.Beat(context.Background()) // transient router outage: retry next tick
		}
	}
}

// Stop ends the heartbeat loop (without deregistering — see Deregister).
func (a *Agent) Stop() {
	select {
	case <-a.stop:
	default:
		close(a.stop)
	}
	<-a.done
}

// Beat sends one heartbeat and applies the reply: remembers the peer
// set and epoch, and repartitions the node's watt share across its
// sessions by demand through the PowerCap policy path.
func (a *Agent) Beat(ctx context.Context) error {
	a.mu.Lock()
	draining := a.draining
	a.mu.Unlock()
	hb := api.NodeHeartbeat{
		Name:     a.name,
		URL:      a.advertise,
		Sessions: a.fleet.SessionCount(),
		DemandW:  a.fleet.DemandW(),
		Draining: draining,
	}
	body, err := json.Marshal(&hb)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.routerURL+"/cluster/v1/nodes", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("router answered HTTP %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	var reply api.HeartbeatReply
	if err := json.Unmarshal(raw, &reply); err != nil {
		return err
	}
	a.mu.Lock()
	a.epoch = reply.Epoch
	a.budgetW = reply.BudgetW
	a.peers = reply.Nodes
	a.mu.Unlock()
	a.applyBudget(reply.BudgetW)
	return nil
}

// applyBudget partitions the node's watt share across sessions
// proportional to demand — the same rule the router applies across
// nodes, one level down — and installs each share as a per-session
// power cap. budget <= 0 lifts every cap.
func (a *Agent) applyBudget(budget float64) {
	ids, demands := a.fleet.SessionDemands()
	if budget <= 0 {
		for _, id := range ids {
			_ = a.fleet.SetSessionPowerCap(id, 0)
		}
		return
	}
	shares := PartitionBudget(budget, ids, demands)
	for _, id := range ids {
		w := shares[id]
		if w <= 0 {
			// Zero demand under a live budget: a tiny positive cap keeps the
			// session bounded until it draws power and earns a real share at
			// the next repartition. Never deliver "no cap" under a budget.
			w = 1e-3
		}
		_ = a.fleet.SetSessionPowerCap(id, w) // migrating sessions refuse; their cap shipped
	}
}

// SetDraining flips the node's drain flag and pushes it to the router
// immediately, so placement stops before the drain starts moving
// sessions.
func (a *Agent) SetDraining(ctx context.Context, on bool) error {
	a.mu.Lock()
	a.draining = on
	a.mu.Unlock()
	return a.Beat(ctx)
}

// Epoch and BudgetW report the last heartbeat reply.
func (a *Agent) Epoch() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

func (a *Agent) BudgetW() float64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.budgetW
}

// Peers returns the last-seen membership view.
func (a *Agent) Peers() []api.Node {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]api.Node(nil), a.peers...)
}

// MigrateAll drains every local session to its rendezvous-chosen peer
// among the ready non-self nodes from the last heartbeat. It returns
// the completed moves; sessions that refuse (runs in flight) or whose
// ship fails are returned as errors and stay local.
func (a *Agent) MigrateAll(ctx context.Context) ([]api.Migration, []error) {
	peers := a.Peers()
	names := make([]string, 0, len(peers))
	urls := make(map[string]string, len(peers))
	for _, p := range peers {
		if p.Name == a.name || p.State != api.NodeReady {
			continue
		}
		names = append(names, p.Name)
		urls[p.Name] = p.URL
	}
	if len(names) == 0 {
		return nil, []error{fmt.Errorf("no ready peers to drain to")}
	}
	ring := NewRing(names)
	var moved []api.Migration
	var errs []error
	for _, id := range a.fleet.SessionIDs() {
		target := ring.Owner(id)
		mig, err := a.fleet.MigrateSession(ctx, api.MigrateRequest{
			Session:    id,
			TargetName: target,
			TargetURL:  urls[target],
		})
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", id, err))
			continue
		}
		moved = append(moved, mig)
	}
	return moved, errs
}

// Deregister removes the node from the router's registry (clean
// shutdown; an unclean exit expires by heartbeat TTL instead).
func (a *Agent) Deregister(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		a.routerURL+"/cluster/v1/nodes/"+a.name, nil)
	if err != nil {
		return err
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	if resp.StatusCode/100 != 2 {
		return fmt.Errorf("router answered HTTP %d", resp.StatusCode)
	}
	return nil
}
