package sysfs

import (
	"strings"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/sim"
	"avfs/internal/telemetry"
)

func telemetryFS(t *testing.T) (*FS, *telemetry.Registry) {
	t.Helper()
	m := sim.New(chip.XGene3Spec())
	fs := New(m)
	reg := telemetry.NewRegistry()
	telemetry.WireMachine(m, reg, nil)
	fs.AttachTelemetry(reg)
	return fs, reg
}

func TestTelemetryNodesReadable(t *testing.T) {
	fs, reg := telemetryFS(t)
	path := "telemetry/" + telemetry.MetricVoltageMV
	got, err := fs.Read(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	want, _ := reg.Value(telemetry.MetricVoltageMV)
	if got != "880" && got != "980" { // nominal of either chip generation
		t.Logf("voltage node %q (registry %v)", got, want)
	}
	if got == "" {
		t.Error("empty telemetry node")
	}
	// Labelled metrics become path segments.
	labelled := "telemetry/" + telemetry.MetricPMDFreqMHz + "/pmd=0"
	if v, err := fs.Read(labelled); err != nil || v == "" {
		t.Errorf("read %s = %q, %v", labelled, v, err)
	}
}

func TestTelemetryNodesReadOnly(t *testing.T) {
	fs, _ := telemetryFS(t)
	path := "telemetry/" + telemetry.MetricVoltageMV
	err := fs.Write(path, "0")
	if _, ok := err.(*ErrReadOnly); !ok {
		t.Errorf("write to %s returned %v, want ErrReadOnly", path, err)
	}
	// A bogus telemetry path is not-found, not read-only.
	if err := fs.Write("telemetry/no_such_metric", "0"); err == nil {
		t.Error("write to nonexistent telemetry node must fail")
	}
}

func TestTelemetryNodesListed(t *testing.T) {
	fs, _ := telemetryFS(t)
	var n int
	for _, p := range fs.List() {
		if !strings.HasPrefix(p, "telemetry/") {
			continue
		}
		n++
		if v, err := fs.Read(p); err != nil || v == "" {
			t.Errorf("listed node %s unreadable: %q, %v", p, v, err)
		}
	}
	if n == 0 {
		t.Fatal("List exposes no telemetry nodes")
	}
}

func TestTelemetryDetachedIsNotFound(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	fs := New(m)
	if _, err := fs.Read("telemetry/" + telemetry.MetricVoltageMV); err == nil {
		t.Error("telemetry read without an attached registry must fail")
	}
	for _, p := range fs.List() {
		if strings.HasPrefix(p, "telemetry/") {
			t.Errorf("detached FS lists telemetry node %s", p)
		}
	}
}
