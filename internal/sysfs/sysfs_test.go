package sysfs

import (
	"errors"
	"strconv"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/sim"
	"avfs/internal/workload"
)

func newFS(t *testing.T) (*FS, *sim.Machine) {
	t.Helper()
	m := sim.New(chip.XGene3Spec())
	return New(m), m
}

func TestReadFrequencyNodes(t *testing.T) {
	fs, m := newFS(t)
	m.Chip.SetPMDFreq(2, 1500)
	got, err := fs.Read("cpu/cpufreq/policy2/scaling_cur_freq")
	if err != nil || got != "1500000" {
		t.Errorf("cur_freq = %q, %v; want 1500000 kHz", got, err)
	}
	max, _ := fs.Read("cpu/cpufreq/policy0/scaling_max_freq")
	if max != "3000000" {
		t.Errorf("max_freq = %q", max)
	}
	min, _ := fs.Read("cpu/cpufreq/policy0/scaling_min_freq")
	if min != "375000" {
		t.Errorf("min_freq = %q", min)
	}
}

func TestWriteSetspeed(t *testing.T) {
	fs, m := newFS(t)
	if err := fs.Write("cpu/cpufreq/policy5/scaling_setspeed", "1500000"); err != nil {
		t.Fatal(err)
	}
	if m.Chip.PMDFreq(5) != 1500 {
		t.Errorf("PMD5 freq = %v after sysfs write", m.Chip.PMDFreq(5))
	}
	if err := fs.Write("cpu/cpufreq/policy5/scaling_setspeed", "garbage"); err == nil {
		t.Error("bad frequency value must error")
	}
	if err := fs.Write("cpu/cpufreq/policy5/scaling_cur_freq", "1"); err == nil {
		t.Error("cur_freq is read-only")
	}
}

func TestVoltageNode(t *testing.T) {
	fs, m := newFS(t)
	if err := fs.Write("slimpro/pcp_voltage_mv", "815"); err != nil {
		t.Fatal(err)
	}
	if m.Chip.Voltage() != 815 {
		t.Errorf("voltage = %v after sysfs write", m.Chip.Voltage())
	}
	got, _ := fs.Read("slimpro/pcp_voltage_mv")
	if got != "815" {
		t.Errorf("read-back voltage = %q", got)
	}
	nom, _ := fs.Read("slimpro/pcp_nominal_mv")
	if nom != "870" {
		t.Errorf("nominal = %q", nom)
	}
	if err := fs.Write("slimpro/pcp_nominal_mv", "900"); err == nil {
		t.Error("nominal is read-only")
	}
}

func TestGovernorNode(t *testing.T) {
	fs, _ := newFS(t)
	got, _ := fs.Read("cpu/cpufreq/scaling_governor")
	if got != "ondemand" {
		t.Errorf("default governor = %q", got)
	}
	if err := fs.Write("cpu/cpufreq/scaling_governor", "userspace\n"); err != nil {
		t.Fatal(err)
	}
	got, _ = fs.Read("cpu/cpufreq/scaling_governor")
	if got != "userspace" {
		t.Errorf("governor after write = %q (whitespace must be trimmed)", got)
	}
}

func TestPMUNodes(t *testing.T) {
	fs, m := newFS(t)
	p := m.MustSubmit(workload.MustByName("CG"), 1)
	m.Place(p, []chip.CoreID{7})
	m.RunFor(0.1)
	for _, node := range []string{"cycles", "instructions", "l3c_accesses"} {
		v, err := fs.Read("pmu/cpu7/" + node)
		if err != nil {
			t.Fatal(err)
		}
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil || n == 0 {
			t.Errorf("pmu/cpu7/%s = %q, want positive integer", node, v)
		}
	}
	if err := fs.Write("pmu/cpu7/cycles", "0"); err == nil {
		t.Error("PMU counters are read-only")
	}
}

func TestNotFoundErrors(t *testing.T) {
	fs, _ := newFS(t)
	for _, path := range []string{
		"nope",
		"cpu/cpufreq/policy99/scaling_cur_freq",
		"cpu/cpufreq/policy0/nope",
		"cpu/cpufreq/policyX/scaling_cur_freq",
		"pmu/cpu99/cycles",
		"pmu/cpu0/nope",
		"pmu/cpu0",
	} {
		if _, err := fs.Read(path); err == nil {
			t.Errorf("Read(%q) should fail", path)
		} else {
			var nf *ErrNotFound
			if !errors.As(err, &nf) {
				t.Errorf("Read(%q) error type = %T", path, err)
			}
		}
	}
	if err := fs.Write("nope", "1"); err == nil {
		t.Error("Write to unknown node should fail")
	}
}

func TestListCoversEveryNode(t *testing.T) {
	fs, _ := newFS(t)
	paths := fs.List()
	// 16 policies × 4 nodes + governor + 2 slimpro + 32 cores × 3.
	want := 16*4 + 3 + 32*3
	if len(paths) != want {
		t.Fatalf("List returned %d nodes, want %d", len(paths), want)
	}
	for _, p := range paths {
		if _, err := fs.Read(p); err != nil {
			t.Errorf("listed node %q unreadable: %v", p, err)
		}
	}
}

func TestErrorStrings(t *testing.T) {
	if (&ErrNotFound{"x"}).Error() == "" || (&ErrReadOnly{"y"}).Error() == "" {
		t.Error("error strings must be non-empty")
	}
}
