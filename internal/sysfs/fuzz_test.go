package sysfs

import (
	"testing"

	"avfs/internal/chip"
	"avfs/internal/sim"
)

// FuzzReadWrite feeds arbitrary paths and values through the virtual
// sysfs: any outcome is acceptable except a panic, and a successful write
// must leave the machine in a valid electrical state.
func FuzzReadWrite(f *testing.F) {
	seeds := []struct {
		path, value string
	}{
		{"slimpro/pcp_voltage_mv", "815"},
		{"cpu/cpufreq/policy0/scaling_setspeed", "1500000"},
		{"cpu/cpufreq/policy15/scaling_cur_freq", ""},
		{"cpu/cpufreq/scaling_governor", "userspace"},
		{"pmu/cpu31/l3c_accesses", ""},
		{"cpu/cpufreq/policy-1/scaling_setspeed", "x"},
		{"cpu/cpufreq/policy99999999999999999999/scaling_setspeed", "1"},
		{"pmu/cpu/cycles", ""},
		{"", ""},
		{"slimpro/pcp_voltage_mv", "-100000"},
		{"slimpro/pcp_voltage_mv", "99999999999999999999"},
	}
	for _, s := range seeds {
		f.Add(s.path, s.value)
	}
	m := sim.New(chip.XGene3Spec())
	fs := New(m)
	f.Fuzz(func(t *testing.T, path, value string) {
		fs.Read(path)
		fs.Write(path, value)
		// Whatever happened, the machine must remain electrically valid.
		v := m.Chip.Voltage()
		if v < m.Spec.MinSafeMV || v > m.Spec.NominalMV {
			t.Fatalf("voltage %v escaped the regulator envelope", v)
		}
		for p := 0; p < m.Spec.PMDs(); p++ {
			fr := m.Chip.PMDFreq(chip.PMDID(p))
			if fr < m.Spec.MinFreq || fr > m.Spec.MaxFreq {
				t.Fatalf("PMD%d frequency %v escaped the envelope", p, fr)
			}
		}
	})
}
