// Package sysfs emulates the Linux sysfs interface the paper's software
// stack uses on the real servers: cpufreq policy nodes (one per PMD, since
// frequency is per core pair), the SLIMpro voltage node, and read-only PMU
// counter nodes exported by the custom kernel module.
//
// The emulation is a string-keyed virtual file tree over a sim.Machine, so
// tools written against it (cmd/avfsd exposes it on its CLI) would port to
// the real sysfs with only a mount-prefix change.
package sysfs

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"avfs/internal/chip"
	"avfs/internal/perfmon"
	"avfs/internal/sim"
	"avfs/internal/telemetry"
)

// FS is the virtual sysfs tree bound to one machine.
type FS struct {
	m   *sim.Machine
	pmu *perfmon.PMU
	// governor is a free-form label knob (the kernel stores it; the
	// governor logic itself lives in internal/sched).
	governor string
	// tel, when attached, exposes registry metrics as read-only nodes
	// under telemetry/.
	tel *telemetry.Registry
}

// New mounts a virtual sysfs over a machine.
func New(m *sim.Machine) *FS {
	return &FS{m: m, pmu: &perfmon.PMU{M: m}, governor: "ondemand"}
}

// Paths of the tree:
//
//	cpu/cpufreq/policy<P>/scaling_cur_freq      (kHz, read)
//	cpu/cpufreq/policy<P>/scaling_setspeed      (kHz, write)
//	cpu/cpufreq/policy<P>/scaling_max_freq      (kHz, read)
//	cpu/cpufreq/policy<P>/scaling_min_freq      (kHz, read)
//	cpu/cpufreq/scaling_governor                (read/write)
//	slimpro/pcp_voltage_mv                      (mV, read/write)
//	slimpro/pcp_nominal_mv                      (mV, read)
//	pmu/cpu<C>/cycles                           (read)
//	pmu/cpu<C>/instructions                     (read)
//	pmu/cpu<C>/l3c_accesses                     (read)
//	telemetry/<metric>[/<label>=<value>...]     (read, when attached)
const docOnly = 0

// AttachTelemetry exposes every scalar metric (counters and gauges) of a
// registry as read-only nodes under telemetry/. Label dimensions become
// path segments, e.g. telemetry/avfs_pmd_frequency_mhz/pmd=3.
func (fs *FS) AttachTelemetry(reg *telemetry.Registry) { fs.tel = reg }

// metricNode renders the node path of one registry sample.
func metricNode(s telemetry.Sample) string {
	var b strings.Builder
	b.WriteString("telemetry/")
	b.WriteString(s.Name)
	for _, l := range s.Labels {
		b.WriteByte('/')
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// readTelemetry resolves a telemetry/ path against the attached registry.
func (fs *FS) readTelemetry(path string) (string, error) {
	if fs.tel == nil {
		return "", &ErrNotFound{path}
	}
	for _, s := range fs.tel.Gather() {
		if s.Kind == telemetry.KindHistogram {
			continue // distributions have no single scalar node
		}
		if metricNode(s) == path {
			return strconv.FormatFloat(s.Value, 'g', -1, 64), nil
		}
	}
	return "", &ErrNotFound{path}
}

// ErrNotFound reports a missing node.
type ErrNotFound struct{ Path string }

func (e *ErrNotFound) Error() string { return fmt.Sprintf("sysfs: no such node %q", e.Path) }

// ErrReadOnly reports a write to a read-only node.
type ErrReadOnly struct{ Path string }

func (e *ErrReadOnly) Error() string { return fmt.Sprintf("sysfs: node %q is read-only", e.Path) }

// Read returns the contents of a node.
func (fs *FS) Read(path string) (string, error) {
	if p, rest, ok := cutPrefix(path, "cpu/cpufreq/policy"); ok {
		_ = p
		pmd, attr, err := fs.parsePolicy(rest)
		if err != nil {
			return "", err
		}
		switch attr {
		case "scaling_cur_freq":
			return strconv.Itoa(int(fs.m.Chip.PMDFreq(pmd)) * 1000), nil
		case "scaling_max_freq":
			return strconv.Itoa(int(fs.m.Spec.MaxFreq) * 1000), nil
		case "scaling_min_freq":
			return strconv.Itoa(int(fs.m.Spec.MinFreq) * 1000), nil
		case "scaling_setspeed":
			return strconv.Itoa(int(fs.m.Chip.PMDFreq(pmd)) * 1000), nil
		}
		return "", &ErrNotFound{path}
	}
	switch path {
	case "cpu/cpufreq/scaling_governor":
		return fs.governor, nil
	case "slimpro/pcp_voltage_mv":
		return strconv.Itoa(int(fs.m.Chip.Voltage())), nil
	case "slimpro/pcp_nominal_mv":
		return strconv.Itoa(int(fs.m.Spec.NominalMV)), nil
	}
	if _, rest, ok := cutPrefix(path, "pmu/cpu"); ok {
		core, attr, err := fs.parseCPU(rest)
		if err != nil {
			return "", err
		}
		var ev perfmon.Event
		switch attr {
		case "cycles":
			ev = perfmon.Cycles
		case "instructions":
			ev = perfmon.Instructions
		case "l3c_accesses":
			ev = perfmon.L3CAccesses
		default:
			return "", &ErrNotFound{path}
		}
		return strconv.FormatUint(fs.pmu.Read(core, ev), 10), nil
	}
	if strings.HasPrefix(path, "telemetry/") {
		return fs.readTelemetry(path)
	}
	return "", &ErrNotFound{path}
}

// Write stores a value into a writable node.
func (fs *FS) Write(path, value string) error {
	value = strings.TrimSpace(value)
	if _, rest, ok := cutPrefix(path, "cpu/cpufreq/policy"); ok {
		pmd, attr, err := fs.parsePolicy(rest)
		if err != nil {
			return err
		}
		switch attr {
		case "scaling_setspeed":
			khz, err := strconv.Atoi(value)
			if err != nil {
				return fmt.Errorf("sysfs: %q: bad frequency %q: %v", path, value, err)
			}
			fs.m.Chip.SetPMDFreq(pmd, chip.MHz(khz/1000))
			return nil
		case "scaling_cur_freq", "scaling_max_freq", "scaling_min_freq":
			return &ErrReadOnly{path}
		}
		return &ErrNotFound{path}
	}
	switch path {
	case "cpu/cpufreq/scaling_governor":
		fs.governor = value
		return nil
	case "slimpro/pcp_voltage_mv":
		mv, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("sysfs: %q: bad voltage %q: %v", path, value, err)
		}
		fs.m.Chip.SetVoltage(chip.Millivolts(mv))
		return nil
	case "slimpro/pcp_nominal_mv":
		return &ErrReadOnly{path}
	}
	if _, _, ok := cutPrefix(path, "pmu/cpu"); ok {
		return &ErrReadOnly{path}
	}
	if strings.HasPrefix(path, "telemetry/") {
		if fs.tel == nil {
			return &ErrNotFound{path}
		}
		if _, err := fs.readTelemetry(path); err != nil {
			return err
		}
		return &ErrReadOnly{path}
	}
	return &ErrNotFound{path}
}

// List returns every node path in the tree, sorted.
func (fs *FS) List() []string {
	var out []string
	for p := 0; p < fs.m.Spec.PMDs(); p++ {
		base := fmt.Sprintf("cpu/cpufreq/policy%d/", p)
		out = append(out,
			base+"scaling_cur_freq",
			base+"scaling_setspeed",
			base+"scaling_max_freq",
			base+"scaling_min_freq",
		)
	}
	out = append(out,
		"cpu/cpufreq/scaling_governor",
		"slimpro/pcp_voltage_mv",
		"slimpro/pcp_nominal_mv",
	)
	for c := 0; c < fs.m.Spec.Cores; c++ {
		base := fmt.Sprintf("pmu/cpu%d/", c)
		out = append(out, base+"cycles", base+"instructions", base+"l3c_accesses")
	}
	if fs.tel != nil {
		for _, s := range fs.tel.Gather() {
			if s.Kind == telemetry.KindHistogram {
				continue
			}
			out = append(out, metricNode(s))
		}
	}
	sort.Strings(out)
	return out
}

func (fs *FS) parsePolicy(rest string) (chip.PMDID, string, error) {
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return 0, "", &ErrNotFound{"cpu/cpufreq/policy" + rest}
	}
	n, err := strconv.Atoi(rest[:slash])
	if err != nil || !fs.m.Spec.ValidPMD(chip.PMDID(n)) {
		return 0, "", &ErrNotFound{"cpu/cpufreq/policy" + rest}
	}
	return chip.PMDID(n), rest[slash+1:], nil
}

func (fs *FS) parseCPU(rest string) (chip.CoreID, string, error) {
	slash := strings.IndexByte(rest, '/')
	if slash < 0 {
		return 0, "", &ErrNotFound{"pmu/cpu" + rest}
	}
	n, err := strconv.Atoi(rest[:slash])
	if err != nil || !fs.m.Spec.ValidCore(chip.CoreID(n)) {
		return 0, "", &ErrNotFound{"pmu/cpu" + rest}
	}
	return chip.CoreID(n), rest[slash+1:], nil
}

// cutPrefix is strings.CutPrefix with an extra bool-style shape kept local
// to avoid a Go version dependency.
func cutPrefix(s, prefix string) (string, string, bool) {
	if strings.HasPrefix(s, prefix) {
		return prefix, s[len(prefix):], true
	}
	return "", s, false
}
