// Package chip models the topology and electrical specification of the
// multicore server CPUs studied in the paper: Applied Micro (Ampere)
// X-Gene 2 and X-Gene 3.
//
// The unit conventions used across the whole repository are defined here:
// voltages are expressed in millivolts (type Millivolts), frequencies in
// megahertz (type MHz), power in watts (float64) and energy in joules
// (float64). Both studied chips share the same architectural shape: the
// cores are grouped in pairs called PMDs (Processor MoDules); every PMD has
// a private L2 cache shared by its two cores, every core has private L1
// caches, and the whole chip shares one L3 cache. Frequency can be set per
// PMD while the supply voltage of the PCP (Processor ComPlex) power domain
// is global to the chip and controlled through the SLIMpro management
// processor.
package chip

import (
	"fmt"
	"sort"
)

// Millivolts is a supply-voltage level in millivolts (mV).
type Millivolts int

// String renders the voltage as e.g. "870mV".
func (v Millivolts) String() string { return fmt.Sprintf("%dmV", int(v)) }

// Volts converts the level to volts.
func (v Millivolts) Volts() float64 { return float64(v) / 1000.0 }

// MHz is a clock frequency in megahertz.
type MHz int

// String renders the frequency as e.g. "2400MHz".
func (f MHz) String() string { return fmt.Sprintf("%dMHz", int(f)) }

// GHz converts the frequency to gigahertz.
func (f MHz) GHz() float64 { return float64(f) / 1000.0 }

// Hz converts the frequency to hertz.
func (f MHz) Hz() float64 { return float64(f) * 1e6 }

// Model identifies one of the two chips reproduced from the paper.
type Model int

const (
	// XGene2 is the 8-core, 28 nm bulk CMOS part (nominal 980 mV, 2.4 GHz).
	XGene2 Model = iota
	// XGene3 is the 32-core, 16 nm FinFET part (nominal 870 mV, 3.0 GHz).
	XGene3
)

// String returns the marketing name of the model.
func (m Model) String() string {
	switch m {
	case XGene2:
		return "X-Gene 2"
	case XGene3:
		return "X-Gene 3"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Process is the silicon technology node of a chip. It parameterizes the
// leakage component of the power model.
type Process int

const (
	// Bulk28nm is 28 nm planar bulk CMOS (X-Gene 2).
	Bulk28nm Process = iota
	// FinFET16nm is 16 nm FinFET (X-Gene 3).
	FinFET16nm
)

// String returns the human-readable node name.
func (p Process) String() string {
	switch p {
	case Bulk28nm:
		return "28nm bulk CMOS"
	case FinFET16nm:
		return "16nm FinFET"
	default:
		return fmt.Sprintf("Process(%d)", int(p))
	}
}

// CoreID identifies one core on a chip, in [0, Spec.Cores).
type CoreID int

// PMDID identifies one Processor MoDule (a pair of cores sharing an L2),
// in [0, Spec.PMDs()).
type PMDID int

// Spec is the static description of a chip: topology, cache hierarchy, and
// the electrical envelope (nominal voltage, frequency range and step).
//
// A Spec is immutable; the mutable run-time state (current voltage, per-PMD
// frequencies) lives in Chip.
type Spec struct {
	Model   Model
	Name    string
	Cores   int // total cores; PMDs = Cores/2
	Process Process

	// Electrical envelope.
	NominalMV   Millivolts // nominal PCP supply voltage
	MinSafeMV   Millivolts // absolute lowest voltage the regulator accepts
	VoltageStep Millivolts // regulator granularity

	MaxFreq  MHz // maximum core clock
	MinFreq  MHz // minimum core clock
	FreqStep MHz // 1/8 of MaxFreq on both chips (CPPC abstract scale)

	// Cache hierarchy (bytes).
	L1I int
	L1D int
	L2  int // per PMD
	L3  int // chip-wide

	// TDPWatts is the thermal design power of the part.
	TDPWatts float64

	// MemBandwidth is the aggregate L3+DRAM service capacity in
	// accesses/second used by the contention model.
	MemBandwidth float64
}

// PMDs returns the number of processor modules (core pairs).
func (s *Spec) PMDs() int { return s.Cores / 2 }

// PMDOf returns the PMD that hosts core c.
func (s *Spec) PMDOf(c CoreID) PMDID { return PMDID(int(c) / 2) }

// CoresOf returns the two cores of PMD p.
func (s *Spec) CoresOf(p PMDID) (CoreID, CoreID) {
	return CoreID(2 * int(p)), CoreID(2*int(p) + 1)
}

// ValidCore reports whether c is a core of this chip.
func (s *Spec) ValidCore(c CoreID) bool { return c >= 0 && int(c) < s.Cores }

// ValidPMD reports whether p is a PMD of this chip.
func (s *Spec) ValidPMD(p PMDID) bool { return p >= 0 && int(p) < s.PMDs() }

// HalfFreq returns the half-speed operating point (MaxFreq/2), the point at
// which the PMD clock switches from clock skipping to true clock division.
func (s *Spec) HalfFreq() MHz { return s.MaxFreq / 2 }

// FreqSteps returns the list of selectable frequency points from MinFreq to
// MaxFreq at FreqStep granularity, ascending. Both chips expose 1/8 steps
// of the maximum clock (CPPC abstract performance scale).
func (s *Spec) FreqSteps() []MHz {
	var steps []MHz
	for f := s.MaxFreq; f >= s.MinFreq; f -= s.FreqStep {
		steps = append(steps, f)
	}
	sort.Slice(steps, func(i, j int) bool { return steps[i] < steps[j] })
	return steps
}

// ClampFreq snaps f into the selectable range, rounding down to the nearest
// step (the CPPC interface grants "up to" the requested performance).
func (s *Spec) ClampFreq(f MHz) MHz {
	if f >= s.MaxFreq {
		return s.MaxFreq
	}
	if f <= s.MinFreq {
		return s.MinFreq
	}
	// Snap to the step grid anchored at MaxFreq.
	stepsDown := (s.MaxFreq - f) / s.FreqStep
	if (s.MaxFreq-f)%s.FreqStep != 0 {
		stepsDown++
	}
	g := s.MaxFreq - stepsDown*s.FreqStep
	if g < s.MinFreq {
		return s.MinFreq
	}
	return g
}

// ClampVoltage snaps v into [MinSafeMV, NominalMV] on the regulator grid.
func (s *Spec) ClampVoltage(v Millivolts) Millivolts {
	if v > s.NominalMV {
		v = s.NominalMV
	}
	if v < s.MinSafeMV {
		v = s.MinSafeMV
	}
	rem := (v - s.MinSafeMV) % s.VoltageStep
	return v - rem
}

// XGene2Spec returns the specification of the X-Gene 2 (Table I of the
// paper): 8 ARMv8 cores in 4 PMDs, 28 nm, 980 mV nominal, 300 MHz–2.4 GHz.
func XGene2Spec() *Spec {
	return &Spec{
		Model:        XGene2,
		Name:         "X-Gene 2",
		Cores:        8,
		Process:      Bulk28nm,
		NominalMV:    980,
		MinSafeMV:    700,
		VoltageStep:  5,
		MaxFreq:      2400,
		MinFreq:      300,
		FreqStep:     300, // 1/8 of 2.4 GHz
		L1I:          32 << 10,
		L1D:          32 << 10,
		L2:           256 << 10,
		L3:           8 << 20,
		TDPWatts:     35,
		MemBandwidth: 0.35e9,
	}
}

// XGene3Spec returns the specification of the X-Gene 3 (Table I of the
// paper): 32 ARMv8 cores in 16 PMDs, 16 nm FinFET, 870 mV nominal,
// 375 MHz–3 GHz.
func XGene3Spec() *Spec {
	return &Spec{
		Model:        XGene3,
		Name:         "X-Gene 3",
		Cores:        32,
		Process:      FinFET16nm,
		NominalMV:    870,
		MinSafeMV:    650,
		VoltageStep:  5,
		MaxFreq:      3000,
		MinFreq:      375,
		FreqStep:     375, // 1/8 of 3 GHz
		L1I:          32 << 10,
		L1D:          32 << 10,
		L2:           256 << 10,
		L3:           32 << 20,
		TDPWatts:     125,
		MemBandwidth: 1.2e9,
	}
}

// SpecFor returns the spec for a model.
func SpecFor(m Model) *Spec {
	switch m {
	case XGene2:
		return XGene2Spec()
	case XGene3:
		return XGene3Spec()
	}
	panic(fmt.Sprintf("chip: unknown model %v", m))
}

// Chip is the mutable electrical state of one chip instance: the global PCP
// supply voltage and the per-PMD clock frequencies. It corresponds to what
// the SLIMpro management processor exposes to the running kernel.
type Chip struct {
	Spec *Spec

	voltage Millivolts
	pmdFreq []MHz

	// gen counts electrical-state changes (voltage or any PMD frequency).
	// Consumers cache derived state (safe-Vmin requirements, power-model
	// inputs) keyed on this counter; a no-op programming that lands on the
	// already-applied value does not advance it.
	gen uint64
}

// New creates a chip in its default power-on state: nominal voltage and all
// PMDs at maximum frequency.
func New(spec *Spec) *Chip {
	c := &Chip{
		Spec:    spec,
		voltage: spec.NominalMV,
		pmdFreq: make([]MHz, spec.PMDs()),
	}
	for i := range c.pmdFreq {
		c.pmdFreq[i] = spec.MaxFreq
	}
	return c
}

// Voltage returns the current PCP supply voltage.
func (c *Chip) Voltage() Millivolts { return c.voltage }

// SetVoltage programs the PCP voltage regulator through SLIMpro. The value
// is clamped to the regulator envelope and grid; the applied value is
// returned. Voltage is chip-global: all cores always share it.
func (c *Chip) SetVoltage(v Millivolts) Millivolts {
	if g := c.Spec.ClampVoltage(v); g != c.voltage {
		c.voltage = g
		c.gen++
	}
	return c.voltage
}

// Generation returns a counter that advances whenever the applied voltage
// or any PMD frequency actually changes. Equal generations guarantee an
// unchanged electrical state, so derived caches remain valid.
func (c *Chip) Generation() uint64 { return c.gen }

// PMDFreq returns the programmed frequency of PMD p.
func (c *Chip) PMDFreq(p PMDID) MHz {
	if !c.Spec.ValidPMD(p) {
		panic(fmt.Sprintf("chip: invalid PMD %d", p))
	}
	return c.pmdFreq[p]
}

// SetPMDFreq programs PMD p to frequency f (clamped to the CPPC grid) and
// returns the applied value. Frequency is per PMD: both cores of the pair
// always run at the same clock.
func (c *Chip) SetPMDFreq(p PMDID, f MHz) MHz {
	if !c.Spec.ValidPMD(p) {
		panic(fmt.Sprintf("chip: invalid PMD %d", p))
	}
	if g := c.Spec.ClampFreq(f); g != c.pmdFreq[p] {
		c.pmdFreq[p] = g
		c.gen++
	}
	return c.pmdFreq[p]
}

// SetAllFreq programs every PMD to frequency f and returns the applied value.
func (c *Chip) SetAllFreq(f MHz) MHz {
	g := c.Spec.ClampFreq(f)
	changed := false
	for i := range c.pmdFreq {
		if c.pmdFreq[i] != g {
			c.pmdFreq[i] = g
			changed = true
		}
	}
	if changed {
		c.gen++
	}
	return g
}

// CoreFreq returns the frequency of the PMD hosting core id.
func (c *Chip) CoreFreq(id CoreID) MHz { return c.PMDFreq(c.Spec.PMDOf(id)) }

// MaxPMDFreq returns the highest frequency currently programmed on any PMD
// in the given utilized set (or over all PMDs when utilized is nil). The
// chip-wide safe Vmin is governed by the fastest active PMD.
func (c *Chip) MaxPMDFreq(utilized []PMDID) MHz {
	var max MHz
	if utilized == nil {
		for _, f := range c.pmdFreq {
			if f > max {
				max = f
			}
		}
		return max
	}
	for _, p := range utilized {
		if f := c.PMDFreq(p); f > max {
			max = f
		}
	}
	return max
}

// Snapshot captures the current V/F state for logging and tests.
type Snapshot struct {
	Voltage Millivolts
	PMDFreq []MHz
}

// Snapshot returns a copy of the current electrical state.
func (c *Chip) Snapshot() Snapshot {
	fr := make([]MHz, len(c.pmdFreq))
	copy(fr, c.pmdFreq)
	return Snapshot{Voltage: c.voltage, PMDFreq: fr}
}
