package chip

import (
	"testing"
	"testing/quick"
)

func TestSpecTopology(t *testing.T) {
	for _, tc := range []struct {
		spec  *Spec
		cores int
		pmds  int
	}{
		{XGene2Spec(), 8, 4},
		{XGene3Spec(), 32, 16},
	} {
		if tc.spec.Cores != tc.cores {
			t.Errorf("%s: cores = %d, want %d", tc.spec.Name, tc.spec.Cores, tc.cores)
		}
		if tc.spec.PMDs() != tc.pmds {
			t.Errorf("%s: PMDs = %d, want %d", tc.spec.Name, tc.spec.PMDs(), tc.pmds)
		}
	}
}

func TestTableIParameters(t *testing.T) {
	x2, x3 := XGene2Spec(), XGene3Spec()
	if x2.NominalMV != 980 || x3.NominalMV != 870 {
		t.Errorf("nominal voltages = %v/%v, want 980/870", x2.NominalMV, x3.NominalMV)
	}
	if x2.MaxFreq != 2400 || x3.MaxFreq != 3000 {
		t.Errorf("max frequencies = %v/%v, want 2400/3000", x2.MaxFreq, x3.MaxFreq)
	}
	if x2.L3 != 8<<20 || x3.L3 != 32<<20 {
		t.Errorf("L3 sizes = %d/%d, want 8MB/32MB", x2.L3, x3.L3)
	}
	if x2.TDPWatts != 35 || x3.TDPWatts != 125 {
		t.Errorf("TDP = %v/%v, want 35/125", x2.TDPWatts, x3.TDPWatts)
	}
	if x2.Process != Bulk28nm || x3.Process != FinFET16nm {
		t.Errorf("process nodes wrong: %v/%v", x2.Process, x3.Process)
	}
}

func TestPMDMapping(t *testing.T) {
	s := XGene3Spec()
	for c := 0; c < s.Cores; c++ {
		p := s.PMDOf(CoreID(c))
		c0, c1 := s.CoresOf(p)
		if CoreID(c) != c0 && CoreID(c) != c1 {
			t.Fatalf("core %d not in its own PMD %d (%d,%d)", c, p, c0, c1)
		}
	}
	if s.PMDOf(0) != s.PMDOf(1) {
		t.Error("cores 0 and 1 must share PMD0")
	}
	if s.PMDOf(1) == s.PMDOf(2) {
		t.Error("cores 1 and 2 must be in different PMDs")
	}
}

func TestFreqSteps(t *testing.T) {
	for _, s := range []*Spec{XGene2Spec(), XGene3Spec()} {
		steps := s.FreqSteps()
		if len(steps) != 8 {
			t.Errorf("%s: %d frequency steps, want 8 (1/8 of max)", s.Name, len(steps))
		}
		if steps[len(steps)-1] != s.MaxFreq || steps[0] != s.MinFreq {
			t.Errorf("%s: steps span %v..%v, want %v..%v",
				s.Name, steps[0], steps[len(steps)-1], s.MinFreq, s.MaxFreq)
		}
		for i := 1; i < len(steps); i++ {
			if steps[i]-steps[i-1] != s.FreqStep {
				t.Errorf("%s: non-uniform step %v", s.Name, steps[i]-steps[i-1])
			}
		}
	}
}

func TestClampFreqProperties(t *testing.T) {
	s := XGene3Spec()
	f := func(raw int16) bool {
		g := s.ClampFreq(MHz(raw))
		if g < s.MinFreq || g > s.MaxFreq {
			return false
		}
		// Idempotent and on-grid.
		if s.ClampFreq(g) != g {
			return false
		}
		return (s.MaxFreq-g)%s.FreqStep == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampFreqRoundsDown(t *testing.T) {
	s := XGene3Spec() // grid: 375,750,...,3000
	if got := s.ClampFreq(2999); got != 2625 {
		t.Errorf("ClampFreq(2999) = %v, want 2625 (round down)", got)
	}
	if got := s.ClampFreq(3000); got != 3000 {
		t.Errorf("ClampFreq(3000) = %v", got)
	}
	if got := s.ClampFreq(1); got != s.MinFreq {
		t.Errorf("ClampFreq(1) = %v, want min", got)
	}
}

func TestClampVoltageProperties(t *testing.T) {
	s := XGene2Spec()
	f := func(raw int16) bool {
		v := s.ClampVoltage(Millivolts(raw))
		if v < s.MinSafeMV || v > s.NominalMV {
			return false
		}
		if s.ClampVoltage(v) != v {
			return false
		}
		return (v-s.MinSafeMV)%s.VoltageStep == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChipDefaults(t *testing.T) {
	c := New(XGene3Spec())
	if c.Voltage() != c.Spec.NominalMV {
		t.Errorf("power-on voltage %v, want nominal", c.Voltage())
	}
	for p := 0; p < c.Spec.PMDs(); p++ {
		if c.PMDFreq(PMDID(p)) != c.Spec.MaxFreq {
			t.Errorf("PMD%d power-on frequency %v, want max", p, c.PMDFreq(PMDID(p)))
		}
	}
}

func TestSetVoltageAndFreq(t *testing.T) {
	c := New(XGene3Spec())
	if got := c.SetVoltage(820); got != 820 || c.Voltage() != 820 {
		t.Errorf("SetVoltage(820) = %v", got)
	}
	if got := c.SetVoltage(5000); got != c.Spec.NominalMV {
		t.Errorf("over-voltage clamps to nominal, got %v", got)
	}
	if got := c.SetPMDFreq(3, 1500); got != 1500 || c.PMDFreq(3) != 1500 {
		t.Errorf("SetPMDFreq = %v", got)
	}
	if got := c.CoreFreq(6); got != 1500 {
		t.Errorf("CoreFreq(6) = %v, want PMD3's 1500", got)
	}
	if got := c.CoreFreq(8); got != c.Spec.MaxFreq {
		t.Errorf("CoreFreq(8) = %v, want max", got)
	}
}

func TestSetAllFreq(t *testing.T) {
	c := New(XGene2Spec())
	c.SetAllFreq(900)
	for p := 0; p < c.Spec.PMDs(); p++ {
		if c.PMDFreq(PMDID(p)) != 900 {
			t.Fatalf("PMD%d = %v after SetAllFreq(900)", p, c.PMDFreq(PMDID(p)))
		}
	}
}

func TestMaxPMDFreq(t *testing.T) {
	c := New(XGene3Spec())
	c.SetAllFreq(1500)
	c.SetPMDFreq(7, 3000)
	if got := c.MaxPMDFreq(nil); got != 3000 {
		t.Errorf("MaxPMDFreq(all) = %v, want 3000", got)
	}
	if got := c.MaxPMDFreq([]PMDID{0, 1}); got != 1500 {
		t.Errorf("MaxPMDFreq(0,1) = %v, want 1500", got)
	}
	if got := c.MaxPMDFreq([]PMDID{7}); got != 3000 {
		t.Errorf("MaxPMDFreq(7) = %v, want 3000", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	c := New(XGene2Spec())
	snap := c.Snapshot()
	c.SetPMDFreq(0, 300)
	c.SetVoltage(800)
	if snap.PMDFreq[0] != c.Spec.MaxFreq || snap.Voltage != c.Spec.NominalMV {
		t.Error("snapshot mutated by later chip changes")
	}
}

func TestInvalidPMDPanics(t *testing.T) {
	c := New(XGene2Spec())
	defer func() {
		if recover() == nil {
			t.Error("PMDFreq(99) should panic")
		}
	}()
	c.PMDFreq(99)
}

func TestHalfFreq(t *testing.T) {
	if XGene2Spec().HalfFreq() != 1200 || XGene3Spec().HalfFreq() != 1500 {
		t.Error("half frequencies must be 1200/1500")
	}
}

func TestUnitStrings(t *testing.T) {
	if Millivolts(870).String() != "870mV" {
		t.Error("Millivolts.String")
	}
	if MHz(2400).String() != "2400MHz" {
		t.Error("MHz.String")
	}
	if MHz(3000).GHz() != 3.0 || MHz(3000).Hz() != 3e9 {
		t.Error("MHz conversions")
	}
	if Millivolts(980).Volts() != 0.98 {
		t.Error("Millivolts.Volts")
	}
}

func TestGenerationCountsOnlyRealChanges(t *testing.T) {
	c := New(XGene3Spec())
	g0 := c.Generation()
	// A no-op programming (same value lands after clamping) must not
	// advance the generation — consumers key caches on it, and voltage
	// re-settles to the same level are common in the daemon's protocol.
	c.SetVoltage(c.Voltage())
	c.SetPMDFreq(0, c.PMDFreq(0))
	c.SetAllFreq(c.PMDFreq(0))
	if c.Generation() != g0 {
		t.Errorf("no-op programmings advanced generation %d -> %d", g0, c.Generation())
	}
	c.SetVoltage(c.Spec.NominalMV - 50)
	if c.Generation() != g0+1 {
		t.Errorf("voltage change advanced generation to %d, want %d", c.Generation(), g0+1)
	}
	c.SetPMDFreq(1, c.Spec.HalfFreq())
	if c.Generation() != g0+2 {
		t.Errorf("frequency change advanced generation to %d, want %d", c.Generation(), g0+2)
	}
	// SetAllFreq counts as one electrical change no matter how many PMDs
	// move.
	c.SetAllFreq(c.Spec.MaxFreq)
	if c.Generation() != g0+3 {
		t.Errorf("SetAllFreq advanced generation to %d, want %d", c.Generation(), g0+3)
	}
	// ...and is still a no-op when every PMD already sits on the target.
	c.SetAllFreq(c.Spec.MaxFreq)
	if c.Generation() != g0+3 {
		t.Errorf("no-op SetAllFreq advanced generation to %d", c.Generation())
	}
}
