package chip

import "testing"

// FuzzClamps checks that the regulator and CPPC clamping functions keep
// any input inside the electrical envelope, on the grid, and idempotent.
func FuzzClamps(f *testing.F) {
	for _, v := range []int32{0, -1, 870, 980, 3000, 1 << 30, -(1 << 30), 299, 301, 2401} {
		f.Add(v, true)
		f.Add(v, false)
	}
	f.Fuzz(func(t *testing.T, raw int32, xg2 bool) {
		s := XGene3Spec()
		if xg2 {
			s = XGene2Spec()
		}
		v := s.ClampVoltage(Millivolts(raw))
		if v < s.MinSafeMV || v > s.NominalMV {
			t.Fatalf("voltage %v outside envelope", v)
		}
		if s.ClampVoltage(v) != v {
			t.Fatalf("voltage clamp not idempotent at %v", v)
		}
		if (v-s.MinSafeMV)%s.VoltageStep != 0 {
			t.Fatalf("voltage %v off the regulator grid", v)
		}
		fr := s.ClampFreq(MHz(raw))
		if fr < s.MinFreq || fr > s.MaxFreq {
			t.Fatalf("frequency %v outside envelope", fr)
		}
		if s.ClampFreq(fr) != fr {
			t.Fatalf("frequency clamp not idempotent at %v", fr)
		}
		if (s.MaxFreq-fr)%s.FreqStep != 0 {
			t.Fatalf("frequency %v off the CPPC grid", fr)
		}
	})
}
