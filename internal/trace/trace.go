// Package trace records time series during evaluation runs — average
// power, system load, and per-class process counts — and post-processes
// them the way the paper's Figs. 14/15 present them (1-second samples,
// 1-minute moving average).
package trace

import (
	"fmt"
	"math"
)

// Point is one sample of a series.
type Point struct {
	T float64 // seconds
	V float64
}

// Series is an append-only time series with non-decreasing timestamps.
type Series struct {
	Name string
	pts  []Point
}

// NewSeries creates an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// Add appends a sample; timestamps must not decrease.
func (s *Series) Add(t, v float64) {
	if n := len(s.pts); n > 0 && t < s.pts[n-1].T {
		panic(fmt.Sprintf("trace: non-monotonic timestamp %v after %v in %s", t, s.pts[n-1].T, s.Name))
	}
	s.pts = append(s.pts, Point{t, v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.pts) }

// Points returns the raw samples (not a copy; callers must not mutate).
func (s *Series) Points() []Point { return s.pts }

// At returns the last value at or before time t (0 before the first
// sample).
func (s *Series) At(t float64) float64 {
	// Binary search for the last point with T <= t.
	lo, hi := 0, len(s.pts)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.pts[mid].T <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return s.pts[lo-1].V
}

// Mean returns the genuinely time-weighted average over the series span:
// each sample's value holds from its timestamp until the next sample
// (the series is a step function, matching At), so irregularly spaced
// samples are weighted by how long they were in effect. For uniformly
// sampled series this equals SampleMean of all but the last point.
// Series with zero span (empty, single-sample, or all samples at one
// instant) fall back to SampleMean.
func (s *Series) Mean() float64 {
	n := len(s.pts)
	if n == 0 {
		return 0
	}
	span := s.pts[n-1].T - s.pts[0].T
	if span <= 0 {
		return s.SampleMean()
	}
	var sum float64
	for i := 0; i < n-1; i++ {
		sum += s.pts[i].V * (s.pts[i+1].T - s.pts[i].T)
	}
	return sum / span
}

// SampleMean returns the unweighted mean of the samples — the historical
// Mean behaviour, still correct when every sample represents an equal
// share of time (or when the caller wants sample statistics, not time
// statistics).
func (s *Series) SampleMean() float64 {
	if len(s.pts) == 0 {
		return 0
	}
	var sum float64
	for _, p := range s.pts {
		sum += p.V
	}
	return sum / float64(len(s.pts))
}

// Max returns the maximum sample value (0 for an empty series).
func (s *Series) Max() float64 {
	var m float64
	for i, p := range s.pts {
		if i == 0 || p.V > m {
			m = p.V
		}
	}
	return m
}

// Resample returns uniform samples of the series every dt seconds from t0
// to t1 inclusive, holding the last value between samples.
func (s *Series) Resample(t0, t1, dt float64) *Series {
	out := NewSeries(s.Name)
	for t := t0; t <= t1+1e-9; t += dt {
		out.Add(t, s.At(t))
	}
	return out
}

// MovingAvg returns a new series where each sample is the mean of the
// trailing `window` seconds of the input — the paper presents system load
// as a 1-minute moving average of 1-second samples (Fig. 15).
func (s *Series) MovingAvg(window float64) *Series {
	out := NewSeries(s.Name + fmt.Sprintf(" (avg %gs)", window))
	var sum float64
	start := 0
	for i, p := range s.pts {
		sum += p.V
		for s.pts[start].T < p.T-window+1e-9 {
			sum -= s.pts[start].V
			start++
		}
		out.Add(p.T, sum/float64(i-start+1))
	}
	return out
}

// Recorder samples a set of gauges on a fixed interval driven by
// simulation time.
type Recorder struct {
	Interval float64
	next     float64
	gauges   []gauge
}

type gauge struct {
	s  *Series
	fn func() float64
}

// NewRecorder creates a recorder sampling every interval seconds.
func NewRecorder(interval float64) *Recorder {
	return &Recorder{Interval: interval}
}

// Track registers a gauge function under a new named series and returns
// the series.
func (r *Recorder) Track(name string, fn func() float64) *Series {
	s := NewSeries(name)
	r.gauges = append(r.gauges, gauge{s, fn})
	return s
}

// NextSampleTime returns the simulation time of the next scheduled
// sample — the tick boundary a coalescing simulator must not batch past
// (see sim.Machine.OnTickBounded).
func (r *Recorder) NextSampleTime() float64 { return r.next }

// Tick samples all gauges if the interval elapsed since the last sample.
// Call it once per simulation step with the current simulation time.
func (r *Recorder) Tick(now float64) {
	if now+1e-12 < r.next {
		return
	}
	for _, g := range r.gauges {
		g.s.Add(now, g.fn())
	}
	// Schedule strictly ahead even if the caller's step overshot several
	// intervals.
	r.next = math.Max(r.next+r.Interval, now+r.Interval/2)
}
