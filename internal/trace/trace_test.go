package trace

import (
	"math"
	"testing"
)

func TestSeriesBasics(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	s.Add(1, 3)
	s.Add(2, 5)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	// Time-weighted: 1 holds over [0,1), 3 over [1,2); the final sample
	// has zero width.
	if s.Mean() != 2 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if s.SampleMean() != 3 {
		t.Errorf("SampleMean = %v", s.SampleMean())
	}
	if s.Max() != 5 {
		t.Errorf("Max = %v", s.Max())
	}
}

func TestMeanTimeWeighted(t *testing.T) {
	// Non-uniform series: 10 holds for 9 seconds, 100 for 1 second.
	s := NewSeries("x")
	s.Add(0, 10)
	s.Add(9, 100)
	s.Add(10, 0)
	want := (10*9 + 100*1) / 10.0
	if got := s.Mean(); math.Abs(got-want) > 1e-12 {
		t.Errorf("time-weighted Mean = %v, want %v", got, want)
	}
	// The sample mean ignores the spacing entirely.
	if got := s.SampleMean(); math.Abs(got-110.0/3) > 1e-12 {
		t.Errorf("SampleMean = %v, want %v", got, 110.0/3)
	}
}

func TestMeanDegenerateSpans(t *testing.T) {
	single := NewSeries("one")
	single.Add(5, 7)
	if single.Mean() != 7 {
		t.Errorf("single-sample Mean = %v, want 7", single.Mean())
	}
	instant := NewSeries("instant")
	instant.Add(2, 4)
	instant.Add(2, 8)
	if instant.Mean() != 6 {
		t.Errorf("zero-span Mean = %v, want SampleMean 6", instant.Mean())
	}
}

func TestSeriesAt(t *testing.T) {
	s := NewSeries("x")
	s.Add(1, 10)
	s.Add(3, 30)
	cases := []struct{ t, want float64 }{
		{0, 0}, {1, 10}, {2, 10}, {3, 30}, {99, 30},
	}
	for _, tc := range cases {
		if got := s.At(tc.t); got != tc.want {
			t.Errorf("At(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestNonMonotonicPanics(t *testing.T) {
	s := NewSeries("x")
	s.Add(5, 1)
	defer func() {
		if recover() == nil {
			t.Error("decreasing timestamp should panic")
		}
	}()
	s.Add(4, 1)
}

func TestMovingAvg(t *testing.T) {
	s := NewSeries("load")
	for i := 0; i < 10; i++ {
		v := 0.0
		if i >= 5 {
			v = 10
		}
		s.Add(float64(i), v)
	}
	avg := s.MovingAvg(3)
	if avg.Len() != 10 {
		t.Fatalf("moving average must keep the sample count, got %d", avg.Len())
	}
	pts := avg.Points()
	// At t=5: window {3,4,5} → values {0,0,10} → 10/3.
	if got := pts[5].V; math.Abs(got-10.0/3.0) > 1e-12 {
		t.Errorf("avg at t=5 = %v, want 3.33", got)
	}
	// At t=9: window {7,8,9} → all 10.
	if got := pts[9].V; got != 10 {
		t.Errorf("avg at t=9 = %v, want 10", got)
	}
	// The moving average must smooth the step, never overshoot.
	for i, p := range pts {
		if p.V < 0 || p.V > 10 {
			t.Errorf("avg[%d] = %v overshoots", i, p.V)
		}
	}
}

func TestResample(t *testing.T) {
	s := NewSeries("x")
	s.Add(0, 1)
	s.Add(2.5, 2)
	r := s.Resample(0, 4, 1)
	if r.Len() != 5 {
		t.Fatalf("resample length %d, want 5", r.Len())
	}
	want := []float64{1, 1, 1, 2, 2}
	for i, p := range r.Points() {
		if p.V != want[i] {
			t.Errorf("resample[%d] = %v, want %v", i, p.V, want[i])
		}
	}
}

func TestRecorder(t *testing.T) {
	r := NewRecorder(1.0)
	v := 0.0
	s := r.Track("gauge", func() float64 { return v })
	for i := 0; i < 50; i++ {
		now := float64(i) / 10 // exact tenths: no accumulation drift
		v = now
		r.Tick(now)
	}
	if s.Len() != 5 {
		t.Fatalf("recorder took %d samples over 5s at 1Hz, want 5", s.Len())
	}
	pts := s.Points()
	if pts[0].T != 0 {
		t.Errorf("first sample at %v, want 0", pts[0].T)
	}
	for i := 1; i < len(pts); i++ {
		if dt := pts[i].T - pts[i-1].T; dt < 0.9 || dt > 1.2 {
			t.Errorf("sample spacing %v", dt)
		}
	}
}

func TestRecorderMultipleGauges(t *testing.T) {
	r := NewRecorder(0.5)
	a := r.Track("a", func() float64 { return 1 })
	b := r.Track("b", func() float64 { return 2 })
	r.Tick(0)
	r.Tick(0.5)
	if a.Len() != 2 || b.Len() != 2 {
		t.Errorf("gauge sample counts %d/%d, want 2/2", a.Len(), b.Len())
	}
	if a.Points()[0].V != 1 || b.Points()[0].V != 2 {
		t.Error("gauge values wrong")
	}
}

func TestEmptySeries(t *testing.T) {
	s := NewSeries("empty")
	if s.Mean() != 0 || s.Max() != 0 || s.At(1) != 0 {
		t.Error("empty series must be all zeros")
	}
	if s.MovingAvg(10).Len() != 0 {
		t.Error("moving average of empty series must be empty")
	}
}
