package telemetry

import (
	"math"
	"testing"
)

// TestHistogramQuantileInterpolation checks the linear-interpolation
// estimator on a hand-computable distribution.
func TestHistogramQuantileInterpolation(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_test", "", []float64{1, 2, 4})
	// 10 observations uniform in (0,1], 10 in (1,2].
	for i := 0; i < 10; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	// Median: rank 10 of 20 is the last observation of the first bucket
	// (0,1] — interpolates to the bucket's upper bound.
	if got := h.Quantile(0.5); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p50 = %v, want 1.0", got)
	}
	// rank 15 is 5/10 through bucket (1,2] -> 1.5.
	if got := h.Quantile(0.75); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p75 = %v, want 1.5", got)
	}
	// First observation interpolates 1/10 into (0,1].
	if got := h.Quantile(0); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("p0 = %v, want 0.1", got)
	}
	if got := h.Quantile(1); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("p100 = %v, want 2.0", got)
	}
}

// TestHistogramQuantileEdges covers the empty, +Inf-bucket and clamping
// contracts.
func TestHistogramQuantileEdges(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("q_edge", "", []float64{1, 10})
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("empty histogram quantile = %v, want 0", got)
	}
	h.Observe(100) // lands in +Inf
	// +Inf bucket clamps to the last finite bound.
	if got := h.Quantile(0.99); got != 10 {
		t.Errorf("+Inf-bucket quantile = %v, want last bound 10", got)
	}
	// Out-of-range q clamps.
	if got := h.Quantile(7); got != h.Quantile(1) {
		t.Errorf("q>1 must clamp to q=1")
	}
	if got := BucketQuantile(nil, []int64{5}, 0.5); got != 0 {
		t.Errorf("boundless histogram quantile = %v, want 0", got)
	}
}
