package telemetry_test

import (
	"testing"

	"avfs/internal/chip"
	"avfs/internal/sim"
	"avfs/internal/telemetry"
	"avfs/internal/workload"
)

func submit(t *testing.T, m *sim.Machine, bench string, threads int) *sim.Process {
	t.Helper()
	b, err := workload.ByName(bench)
	if err != nil {
		t.Fatalf("workload %s: %v", bench, err)
	}
	p, err := m.Submit(b, threads)
	if err != nil {
		t.Fatalf("submit %s: %v", bench, err)
	}
	return p
}

func TestWireMachineGauges(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	reg := telemetry.NewRegistry()
	telemetry.WireMachine(m, reg, nil)

	p := submit(t, m, "CG", 8)
	cores := make([]chip.CoreID, 8)
	for i := range cores {
		cores[i] = chip.CoreID(i)
	}
	if err := m.Place(p, cores); err != nil {
		t.Fatalf("place: %v", err)
	}
	m.RunFor(5)

	if v, ok := reg.Value(telemetry.MetricSimSeconds); !ok || v < 4.9 {
		t.Errorf("sim seconds = %v (ok=%v), want ~5", v, ok)
	}
	if v, ok := reg.Value(telemetry.MetricBusyCores); !ok || v != 8 {
		t.Errorf("busy cores = %v (ok=%v), want 8", v, ok)
	}
	if v, ok := reg.Value(telemetry.MetricUtilizedPMDs); !ok || v != 4 {
		t.Errorf("utilized PMDs = %v (ok=%v), want 4", v, ok)
	}
	if v, ok := reg.Value(telemetry.MetricVoltageMV); !ok || v <= 0 {
		t.Errorf("voltage = %v (ok=%v), want positive", v, ok)
	}
	if v, ok := reg.Value(telemetry.MetricEnergyJoules); !ok || v <= 0 {
		t.Errorf("energy = %v (ok=%v), want positive", v, ok)
	}
	if v, ok := reg.Value(telemetry.MetricEmergChecks); !ok || v <= 0 {
		t.Errorf("emergency checks = %v (ok=%v), want positive", v, ok)
	}
	// Per-PMD frequency gauges exist for the whole chip.
	spec := chip.XGene3Spec()
	for p := 0; p < spec.PMDs(); p++ {
		full := telemetry.MetricPMDFreqMHz + `{pmd="` + itoa(p) + `"}`
		if v, ok := reg.Value(full); !ok || v <= 0 {
			t.Errorf("%s = %v (ok=%v), want positive", full, v, ok)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [4]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

func TestWireMachineEventCountersAndTrace(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	reg := telemetry.NewRegistry()
	tr := telemetry.NewTracer()
	var traced []telemetry.Decision
	tr.Subscribe(func(d telemetry.Decision) { traced = append(traced, d) })
	telemetry.WireMachine(m, reg, tr)

	submit(t, m, "namd", 1)
	m.RunFor(2)

	full := telemetry.MetricMachineEvents + `{kind="` + sim.EvSubmit.String() + `"}`
	if v, ok := reg.Value(full); !ok || v != 1 {
		t.Errorf("submit event counter = %v (ok=%v), want 1", v, ok)
	}
	if len(traced) == 0 {
		t.Fatal("tracer received no machine events")
	}
	for _, d := range traced {
		if d.Kind != telemetry.DecMachineEvent {
			t.Errorf("machine-bus decision kind %v, want machine-event", d.Kind)
		}
		if d.Rule == "" {
			t.Error("machine event with empty rule (event kind)")
		}
	}
}

func TestWireMachineEnvelopeGauges(t *testing.T) {
	m := sim.New(chip.XGene2Spec())
	reg := telemetry.NewRegistry()
	telemetry.WireMachine(m, reg, nil)
	// XGene2 publishes the DividedLow rows of Table II too; every envelope
	// gauge must be a plausible rail voltage.
	n := 0
	for _, s := range reg.Gather() {
		if s.Name != telemetry.MetricVminEnvelope {
			continue
		}
		n++
		if s.Value < 700 || s.Value > 1100 {
			t.Errorf("envelope %s = %v mV out of range", s.Full, s.Value)
		}
	}
	if n != 12 { // 3 frequency classes x 4 droop classes
		t.Errorf("XGene2 publishes %d envelope gauges, want 12", n)
	}
}
