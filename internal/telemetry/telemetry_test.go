package telemetry

import (
	"sync"
	"testing"
)

func TestCounterAndFloatCounter(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "help")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	f := r.FloatCounter("f_total", "help")
	f.Add(0.25)
	f.Add(0.5)
	if f.Value() != 0.75 {
		t.Errorf("float counter = %v, want 0.75", f.Value())
	}
}

func TestGaugeReadsCallbackAtGather(t *testing.T) {
	r := NewRegistry()
	v := 1.0
	r.Gauge("g", "help", func() float64 { return v })
	v = 42
	if got, ok := r.Value("g"); !ok || got != 42 {
		t.Errorf("gauge = %v (ok=%v), want 42", got, ok)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "help", []float64{1, 2, 5})
	for _, v := range []float64{0.5, 1, 1.5, 3, 10} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 1} // ≤1: {0.5,1}; ≤2: {1.5}; ≤5: {3}; +Inf: {10}
	got := h.BucketCounts()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
	if h.Count() != 5 || h.Sum() != 16 {
		t.Errorf("count=%d sum=%v, want 5/16", h.Count(), h.Sum())
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup", "")
	defer func() {
		if recover() == nil {
			t.Error("duplicate metric must panic")
		}
	}()
	r.Counter("dup", "")
}

func TestLabelsDistinguishMetrics(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", "", Label{"k", "a"})
	b := r.Counter("m", "", Label{"k", "b"})
	a.Inc()
	b.Add(2)
	if v, _ := r.Value(`m{k="a"}`); v != 1 {
		t.Errorf(`m{k="a"} = %v, want 1`, v)
	}
	if v, _ := r.Value(`m{k="b"}`); v != 2 {
		t.Errorf(`m{k="b"} = %v, want 2`, v)
	}
}

func TestGatherSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total", "")
	r.Gauge("a_gauge", "", func() float64 { return 7 })
	r.Histogram("m_hist", "", []float64{1})
	samples := r.Gather()
	if len(samples) != 3 {
		t.Fatalf("gathered %d samples, want 3", len(samples))
	}
	for i := 1; i < len(samples); i++ {
		if samples[i-1].Full >= samples[i].Full {
			t.Errorf("gather not sorted: %q >= %q", samples[i-1].Full, samples[i].Full)
		}
	}
	if samples[0].Name != "a_gauge" || samples[0].Value != 7 {
		t.Errorf("first sample %+v", samples[0])
	}
}

func TestConcurrentHotPath(t *testing.T) {
	// Counters, histograms and Gather must be race-free together (the
	// exporter may scrape while the daemon steps).
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "", []float64{1, 10})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 20))
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r.Gather()
	}
	wg.Wait()
	if c.Value() != 4000 || h.Count() != 4000 {
		t.Errorf("counter=%d hist=%d, want 4000/4000", c.Value(), h.Count())
	}
}

func TestTracerSubscribeAndToggle(t *testing.T) {
	tr := NewTracer()
	if tr.Active() {
		t.Error("tracer with no subscribers must be inactive")
	}
	var got []Decision
	tr.Subscribe(func(d Decision) { got = append(got, d) })
	if !tr.Active() {
		t.Error("subscribed tracer must be active")
	}
	tr.Emit(Decision{Kind: DecSettle, Proc: -1})
	tr.SetEnabled(false)
	tr.Emit(Decision{Kind: DecSettle, Proc: -1})
	tr.SetEnabled(true)
	tr.Emit(Decision{Kind: DecGuardRaise, Proc: -1})
	if len(got) != 2 {
		t.Fatalf("received %d decisions, want 2 (disabled emit must drop)", len(got))
	}
	if got[1].Kind != DecGuardRaise {
		t.Errorf("second decision kind %v", got[1].Kind)
	}
}

func TestReconfigSequence(t *testing.T) {
	tr := NewTracer()
	if a, b := tr.NextReconfig(), tr.NextReconfig(); a != 1 || b != 2 {
		t.Errorf("sequence %d,%d, want 1,2", a, b)
	}
}

func TestDecisionKindText(t *testing.T) {
	for k := DecClassify; k <= DecMachineEvent; k++ {
		b, err := k.MarshalText()
		if err != nil {
			t.Fatalf("marshal %v: %v", int(k), err)
		}
		var back DecisionKind
		if err := back.UnmarshalText(b); err != nil || back != k {
			t.Errorf("round trip %q -> %v (err %v), want %v", b, back, err, k)
		}
	}
	var k DecisionKind
	if err := k.UnmarshalText([]byte("bogus")); err == nil {
		t.Error("unknown kind must fail to unmarshal")
	}
}
