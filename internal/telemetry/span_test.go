package telemetry

import (
	"sync"
	"testing"
	"time"
)

// TestSpanRingAppendSince checks basic append ordering and cursor
// advancement.
func TestSpanRingAppendSince(t *testing.T) {
	r := NewSpanRing(8)
	for i := 0; i < 5; i++ {
		r.Append(Span{Name: "op", StartNs: int64(i)})
	}
	spans, next, truncated := r.Since(0)
	if truncated {
		t.Error("cursor 0 on a non-wrapped ring must not be truncated")
	}
	if len(spans) != 5 || next != 5 {
		t.Fatalf("got %d spans next=%d, want 5 spans next=5", len(spans), next)
	}
	for i, sp := range spans {
		if sp.StartNs != int64(i) {
			t.Errorf("span %d out of order: StartNs=%d", i, sp.StartNs)
		}
		if sp.ID == 0 {
			t.Errorf("span %d has no ID (Append must fill zero IDs)", i)
		}
	}
	// Incremental poll from the returned cursor sees only new spans.
	r.Append(Span{Name: "op", StartNs: 5})
	spans, next, truncated = r.Since(next)
	if truncated || len(spans) != 1 || spans[0].StartNs != 5 || next != 6 {
		t.Errorf("incremental poll: %d spans next=%d truncated=%v", len(spans), next, truncated)
	}
	// Polling at the head is empty, same cursor.
	spans, next2, _ := r.Since(next)
	if len(spans) != 0 || next2 != next {
		t.Errorf("poll at head: %d spans next=%d, want empty same-cursor", len(spans), next2)
	}
}

// TestSpanRingWraparoundTruncation is the satellite-required case: a
// cursor older than the oldest retained record must signal truncation
// rather than silently skipping the dropped spans.
func TestSpanRingWraparoundTruncation(t *testing.T) {
	r := NewSpanRing(4)
	for i := 0; i < 10; i++ {
		r.Append(Span{Name: "op", StartNs: int64(i)})
	}
	// Only spans 6..9 are retained; cursor 2 fell off the window.
	spans, next, truncated := r.Since(2)
	if !truncated {
		t.Fatal("cursor older than oldest retained record must report truncated")
	}
	if next != 10 {
		t.Errorf("next = %d, want 10", next)
	}
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want the 4 retained", len(spans))
	}
	for i, sp := range spans {
		if want := int64(6 + i); sp.StartNs != want {
			t.Errorf("retained span %d: StartNs=%d, want %d", i, sp.StartNs, want)
		}
	}
	// A cursor inside the retained window is clean.
	if _, _, truncated := r.Since(7); truncated {
		t.Error("cursor inside the retained window must not be truncated")
	}
	// Exactly at the oldest retained record is clean too.
	if spans, _, truncated := r.Since(6); truncated || len(spans) != 4 {
		t.Errorf("cursor at oldest: %d spans truncated=%v, want 4 clean", len(spans), truncated)
	}
}

// TestSpanRingConcurrentAppend hammers the ring from many goroutines
// while a reader polls; meant to run under -race. Readers must only ever
// see fully published records.
func TestSpanRingConcurrentAppend(t *testing.T) {
	r := NewSpanRing(64)
	const writers, perWriter = 8, 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		var cursor int64
		for {
			select {
			case <-stop:
				return
			default:
			}
			spans, next, _ := r.Since(cursor)
			for _, sp := range spans {
				if sp.Name != "w" {
					t.Errorf("reader saw torn record: %+v", sp)
					return
				}
			}
			cursor = next
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				r.Append(Span{Name: "w", DurationNs: 1})
			}
		}()
	}
	waitDone := make(chan struct{})
	go func() { wg.Wait(); close(waitDone) }()
	// Writers finish fast; close the reader after they are done.
	for r.Len() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-waitDone
	if r.Len() != writers*perWriter {
		t.Errorf("Len = %d, want %d", r.Len(), writers*perWriter)
	}
}

// TestSpanHandleLifecycle covers Start/End and the correlation setters.
func TestSpanHandleLifecycle(t *testing.T) {
	r := NewSpanRing(8)
	root := r.Start("http.request", 0, "req-1")
	child := r.Start("actor.queue", root.ID(), "req-1")
	child.SetSession("sess-1")
	child.SetJob("job-1")
	child.AddTicks(3)
	child.AddTicks(2)
	child.SetStatus("error", "boom")
	child.End()
	root.SetSession("sess-1")
	root.End()

	spans, _, _ := r.Since(0)
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	c, rt := spans[0], spans[1]
	if c.Parent != rt.ID {
		t.Errorf("child parent = %d, want root ID %d", c.Parent, rt.ID)
	}
	if c.Session != "sess-1" || c.Job != "job-1" || c.Request != "req-1" {
		t.Errorf("child correlation IDs wrong: %+v", c)
	}
	if c.Ticks != 5 {
		t.Errorf("child ticks = %d, want 5", c.Ticks)
	}
	if c.Status != "error" || c.Detail != "boom" {
		t.Errorf("child status = %q/%q, want error/boom", c.Status, c.Detail)
	}
	if c.DurationNs < 0 || rt.DurationNs < c.DurationNs {
		t.Errorf("durations inconsistent: child %d root %d", c.DurationNs, rt.DurationNs)
	}
	if rt.StartNs > c.StartNs {
		t.Errorf("root started after child: %d > %d", rt.StartNs, c.StartNs)
	}
}

// TestSpanNilSafety pins the tracing-off contract: nil rings and handles
// are inert.
func TestSpanNilSafety(t *testing.T) {
	var r *SpanRing
	r.Append(Span{Name: "x"})
	if spans, next, truncated := r.Since(0); spans != nil || next != 0 || truncated {
		t.Error("nil ring Since should be empty")
	}
	if r.Len() != 0 {
		t.Error("nil ring Len should be 0")
	}
	h := r.Start("x", 0, "")
	if h != nil {
		t.Fatal("Start on nil ring should return nil handle")
	}
	// All handle methods on nil must be no-ops.
	h.SetSession("s")
	h.SetJob("j")
	h.SetStatus("error", "d")
	h.AddTicks(1)
	h.End()
	if h.ID() != 0 {
		t.Error("nil handle ID should be 0")
	}
}
