package telemetry

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// DecisionKind classifies one entry of the decision trace.
type DecisionKind int

const (
	// DecClassify: a measurement window closed and the process was
	// (re)classified against the L3C threshold.
	DecClassify DecisionKind = iota
	// DecClassFlip: the classification changed (a subset of DecClassify
	// outcomes, emitted as its own event so churn is directly countable).
	DecClassFlip
	// DecPlacement: the placement policy computed a new target plan.
	DecPlacement
	// DecGuardRaise: fail-safe phase A — the voltage was raised to a
	// level safe for both the old and the new configuration.
	DecGuardRaise
	// DecReconfigure: fail-safe phase B — migrations and the per-PMD
	// frequency program.
	DecReconfigure
	// DecSettle: fail-safe phase C — the voltage settled to the new
	// configuration's safe level.
	DecSettle
	// DecMachineEvent: a simulator event (submit/place/migrate/finish/
	// voltage/freq/emergency) forwarded onto the trace bus.
	DecMachineEvent
)

// kindNames maps kinds to their wire names (JSONL "kind" field).
var kindNames = [...]string{
	DecClassify:     "classify",
	DecClassFlip:    "class-flip",
	DecPlacement:    "placement",
	DecGuardRaise:   "guard-raise",
	DecReconfigure:  "reconfigure",
	DecSettle:       "settle",
	DecMachineEvent: "machine-event",
}

// String names the kind.
func (k DecisionKind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("DecisionKind(%d)", int(k))
}

// MarshalText renders the kind as its wire name.
func (k DecisionKind) MarshalText() ([]byte, error) {
	if k < 0 || int(k) >= len(kindNames) {
		return nil, fmt.Errorf("telemetry: unknown decision kind %d", int(k))
	}
	return []byte(kindNames[k]), nil
}

// UnmarshalText parses a wire name back into a kind.
func (k *DecisionKind) UnmarshalText(b []byte) error {
	for i, n := range kindNames {
		if n == string(b) {
			*k = DecisionKind(i)
			return nil
		}
	}
	return fmt.Errorf("telemetry: unknown decision kind %q", b)
}

// Decision is one typed entry of the decision trace: what the daemon (or
// the machine) did, the inputs it saw, and the rule that fired. Zero-value
// fields are omitted from the JSONL encoding except Proc, which uses -1
// for "no process" because 0 is a valid process ID.
type Decision struct {
	// At is the simulation time in seconds.
	At float64 `json:"t"`
	// Kind is the event type.
	Kind DecisionKind `json:"kind"`
	// Rule names the policy rule that fired (e.g. "l3c>=threshold+hyst",
	// "fail-safe-raise", "cluster-cpu/spread-mem").
	Rule string `json:"rule,omitempty"`
	// Reconfig links the guard-raise/reconfigure/settle phases of one
	// reconfiguration (monotone sequence number; 0 = not a phase).
	Reconfig int64 `json:"reconfig,omitempty"`
	// Proc is the subject process ID, -1 when the decision is global.
	Proc int `json:"proc"`
	// Class is the (new) classification for classify/flip events.
	Class string `json:"class,omitempty"`
	// L3CRate is the measured L3C accesses per 1M cycles per core.
	L3CRate float64 `json:"l3c_per_1m,omitempty"`
	// UtilizedPMDs is the utilized-PMD count the decision saw.
	UtilizedPMDs int `json:"utilized_pmds,omitempty"`
	// DroopClass is the Table II droop magnitude class (0-3).
	DroopClass int `json:"droop_class,omitempty"`
	// FromMV/ToMV are the voltage move of guard-raise/settle phases.
	FromMV int `json:"from_mv,omitempty"`
	ToMV   int `json:"to_mv,omitempty"`
	// RequiredMV is the Table II requirement (envelope + guard) of the
	// target configuration — the chosen Vmin.
	RequiredMV int `json:"required_mv,omitempty"`
	// Detail is a free-form human-readable summary.
	Detail string `json:"detail,omitempty"`
}

// Tracer is the decision-trace bus: emitters publish Decisions, sinks
// subscribe. When disabled — or with no subscriber — Active is two atomic
// loads and emitters skip building the Decision entirely.
type Tracer struct {
	mu    sync.Mutex
	subs  []func(Decision)
	nsubs atomic.Int32
	off   atomic.Bool // inverted so the zero value is "enabled"
	seq   atomic.Int64
}

// NewTracer creates an enabled tracer with no subscribers.
func NewTracer() *Tracer { return &Tracer{} }

// Subscribe adds a sink invoked synchronously for every decision, in
// subscription order.
func (t *Tracer) Subscribe(fn func(Decision)) {
	t.mu.Lock()
	t.subs = append(t.subs, fn)
	t.mu.Unlock()
	t.nsubs.Add(1)
}

// SetEnabled turns tracing on or off (the avfsd "trace on|off" command).
// Subscribers stay attached; while off, emitters skip event construction.
func (t *Tracer) SetEnabled(on bool) { t.off.Store(!on) }

// Enabled reports the switch state.
func (t *Tracer) Enabled() bool { return !t.off.Load() }

// Active reports whether an Emit would reach anyone — emitters check this
// before assembling a Decision so disabled tracing costs two atomic loads.
func (t *Tracer) Active() bool { return !t.off.Load() && t.nsubs.Load() > 0 }

// NextReconfig allocates the sequence number linking the phases of one
// reconfiguration. The first ID is 1; 0 means "not part of one".
func (t *Tracer) NextReconfig() int64 { return t.seq.Add(1) }

// Emit publishes one decision to every subscriber.
func (t *Tracer) Emit(d Decision) {
	if !t.Active() {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, fn := range t.subs {
		fn(d)
	}
}
