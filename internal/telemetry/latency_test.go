package telemetry

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// TestLatencyHistQuantileAccuracy replays a known heavy-tailed latency
// distribution and checks every reported quantile against the exact
// order statistic of the sorted sample. The documented bound is
// sqrt(1.02)-1 < 1% relative error.
func TestLatencyHistQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewLatencyHist()
	samples := make([]float64, 0, 20000)
	for i := 0; i < 20000; i++ {
		// Log-normal body with an occasional 100x tail — the shape of a
		// service with GC pauses.
		v := math.Exp(rng.NormFloat64()*1.2) * 50e3 // ~50µs median
		if rng.Float64() < 0.01 {
			v *= 100
		}
		ns := int64(v)
		if ns < 1 {
			ns = 1
		}
		samples = append(samples, float64(ns))
		h.ObserveNs(ns)
	}
	sort.Float64s(samples)
	for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
		rank := int(math.Ceil(q * float64(len(samples))))
		if rank < 1 {
			rank = 1
		}
		exact := samples[rank-1]
		got := h.Quantile(q)
		relErr := math.Abs(got-exact) / exact
		if relErr > 0.01 {
			t.Errorf("p%g: got %.0fns exact %.0fns relative error %.3f%% > 1%%",
				q*100, got, exact, 100*relErr)
		}
	}
	if h.Count() != 20000 {
		t.Errorf("count = %d, want 20000", h.Count())
	}
}

// TestLatencyHistObserveZeroAlloc pins the zero-allocation contract of
// the hot-path Observe.
func TestLatencyHistObserveZeroAlloc(t *testing.T) {
	h := NewLatencyHist()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(137 * time.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("Observe allocates %.1f times per call, want 0", allocs)
	}
}

// TestLatencyHistEdges covers clamping and empty behavior.
func TestLatencyHistEdges(t *testing.T) {
	var empty LatencySnapshot
	if got := empty.Quantile(0.99); got != 0 {
		t.Errorf("empty quantile = %v, want 0", got)
	}
	h := NewLatencyHist()
	h.ObserveNs(-5) // clamps to 0
	h.ObserveNs(0)
	h.ObserveNs(1 << 62)
	s := h.Snapshot()
	if s.Count() != 3 {
		t.Fatalf("count = %d, want 3", s.Count())
	}
	if got := s.Quantile(0); got <= 0 {
		t.Errorf("q0 = %v, want > 0 (bucket midpoint)", got)
	}
	if got := s.Quantile(1); got < 1e18 {
		t.Errorf("q1 = %v, want the top observation's bucket (~4.6e18)", got)
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Errorf("q>1 should clamp to q=1")
	}
}

// TestLatencySnapshotSub checks windowed subtraction isolates the
// interval between two snapshots.
func TestLatencySnapshotSub(t *testing.T) {
	h := NewLatencyHist()
	for i := 0; i < 100; i++ {
		h.ObserveNs(1000) // 1µs era
	}
	base := h.Snapshot()
	for i := 0; i < 100; i++ {
		h.ObserveNs(1_000_000) // 1ms era
	}
	win := h.Snapshot().Sub(base)
	if win.Count() != 100 {
		t.Fatalf("window count = %d, want 100", win.Count())
	}
	// The window must only see the 1ms era.
	if got := win.Quantile(0.5); math.Abs(got-1e6)/1e6 > 0.01 {
		t.Errorf("window p50 = %.0fns, want ~1e6", got)
	}
	if got := win.MeanNs(); math.Abs(got-1e6)/1e6 > 0.01 {
		t.Errorf("window mean = %.0fns, want ~1e6", got)
	}
	// Sub against a zero snapshot is identity.
	full := h.Snapshot().Sub(LatencySnapshot{})
	if full.Count() != 200 {
		t.Errorf("identity sub count = %d, want 200", full.Count())
	}
}

// TestSLOTrackerWindowRotation drives the two-epoch rotation with a fake
// clock: the windowed view must cover between one and two windows and
// drop observations older than that.
func TestSLOTrackerWindowRotation(t *testing.T) {
	tr := NewSLOTracker(time.Minute)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)

	// Epoch 1: slow era.
	for i := 0; i < 50; i++ {
		tr.Observe(10*time.Millisecond, true, t0.Add(time.Duration(i)*time.Second))
	}
	// Cross into epoch 2: fast era.
	t1 := t0.Add(70 * time.Second)
	for i := 0; i < 50; i++ {
		tr.Observe(100*time.Microsecond, false, t1.Add(time.Duration(i)*250*time.Millisecond))
	}
	// Still within two windows of the slow era: both visible.
	snap, errs, covered := tr.Windowed(t1.Add(15 * time.Second))
	if snap.Count() != 100 {
		t.Errorf("window at <2w: count = %d, want 100 (both eras)", snap.Count())
	}
	if errs != 50 {
		t.Errorf("window errors = %d, want 50", errs)
	}
	if covered <= 0 {
		t.Errorf("covered = %v, want > 0", covered)
	}

	// Cross another boundary: the slow era must rotate out.
	t2 := t1.Add(65 * time.Second)
	tr.Observe(100*time.Microsecond, false, t2)
	snap, errs, _ = tr.Windowed(t2.Add(time.Second))
	if snap.Count() >= 100 {
		t.Errorf("after rotation: count = %d, want < 100 (slow era dropped)", snap.Count())
	}
	if errs != 0 {
		t.Errorf("after rotation: errors = %d, want 0", errs)
	}
	if got := snap.Quantile(0.99); got > 1e6 {
		t.Errorf("after rotation p99 = %.0fns, slow era leaked into the window", got)
	}

	// All-time totals keep everything.
	total, totalErrs := tr.Totals()
	if total.Count() != 101 {
		t.Errorf("totals count = %d, want 101", total.Count())
	}
	if totalErrs != 50 {
		t.Errorf("totals errors = %d, want 50", totalErrs)
	}
}

// TestSLOTrackerIdleGap checks the >= 2 windows fast-forward: after a
// long idle stretch the window restarts empty rather than reporting
// ancient observations.
func TestSLOTrackerIdleGap(t *testing.T) {
	tr := NewSLOTracker(time.Minute)
	t0 := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	for i := 0; i < 20; i++ {
		tr.Observe(time.Millisecond, false, t0)
	}
	// 10 minutes of silence, then one observation.
	t1 := t0.Add(10 * time.Minute)
	tr.Observe(2*time.Millisecond, false, t1)
	snap, _, _ := tr.Windowed(t1.Add(time.Second))
	if snap.Count() != 1 {
		t.Errorf("after idle gap: window count = %d, want 1", snap.Count())
	}
}

// TestSLOTrackerNil pins the nil-safety contract tracing-off paths rely on.
func TestSLOTrackerNil(t *testing.T) {
	var tr *SLOTracker
	tr.Observe(time.Second, true, time.Now()) // must not panic
	if snap, errs, covered := tr.Windowed(time.Now()); snap.Count() != 0 || errs != 0 || covered != 0 {
		t.Error("nil tracker Windowed should be all-zero")
	}
	if snap, errs := tr.Totals(); snap.Count() != 0 || errs != 0 {
		t.Error("nil tracker Totals should be all-zero")
	}
	if tr.Window() != 0 {
		t.Error("nil tracker Window should be 0")
	}
}
