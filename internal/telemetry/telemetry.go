// Package telemetry is the unified observability layer of the repository:
// a registry of counters, gauges and fixed-bucket histograms plus a typed
// decision trace (tracer.go) that records every placement/voltage decision
// the daemon takes together with the inputs and the rule that fired.
//
// The paper's daemon claims rest on runtime properties — reconfigurations
// always follow the fail-safe voltage protocol, classification churn is
// bounded by hysteresis, the daemon's own overhead is negligible — that
// can only be checked by watching the daemon run. This package makes those
// properties observable; internal/telemetry/export renders the registry as
// Prometheus text format and the decision trace as JSONL.
//
// Design constraints:
//
//   - Zero allocation on the hot path. Counter.Inc, FloatCounter.Add and
//     Histogram.Observe are lock-free atomics on pre-registered metrics;
//     gauges are callbacks evaluated only at export time; the tracer is a
//     pair of atomic flag checks when disabled.
//   - Safe under the race detector: instrumented code may run while an
//     exporter gathers, so every mutable cell is atomic.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a metric.
type Kind int

const (
	// KindCounter is a monotonically increasing value.
	KindCounter Kind = iota
	// KindGauge is an instantaneous value read from a callback.
	KindGauge
	// KindHistogram is a fixed-bucket distribution.
	KindHistogram
)

// String names the kind the way Prometheus TYPE lines spell it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Label is one metric dimension, baked in at registration time (no
// per-observation label lookup, which would allocate on the hot path).
type Label struct {
	Key, Value string
}

// Labels is a convenience constructor: Labels("pmd", "3", "class", "full").
func Labels(kv ...string) []Label {
	if len(kv)%2 != 0 {
		panic("telemetry: Labels needs key/value pairs")
	}
	out := make([]Label, 0, len(kv)/2)
	for i := 0; i < len(kv); i += 2 {
		out = append(out, Label{kv[i], kv[i+1]})
	}
	return out
}

// renderName appends the {k="v",...} suffix to a metric name, producing
// the canonical identity used for duplicate detection and lookups.
func renderName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (must be non-negative; counters never decrease).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// FloatCounter is a monotonically increasing float metric — used for
// accumulated durations such as per-PMD frequency-class residency.
type FloatCounter struct {
	bits atomic.Uint64
}

// Add accumulates d.
func (c *FloatCounter) Add(d float64) {
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the accumulated total.
func (c *FloatCounter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Histogram is a fixed-bucket distribution. Buckets are upper bounds in
// ascending order; an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1, last is +Inf
	sumBits atomic.Uint64
	n       atomic.Int64
}

// Observe records one value. Allocation-free; the bucket scan is linear
// over the (small, fixed) bound list.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.n.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the bucket upper bounds (excluding the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return h.bounds }

// BucketCounts returns the per-bucket (non-cumulative) counts; the last
// entry is the +Inf bucket.
func (h *Histogram) BucketCounts() []int64 {
	out := make([]int64, len(h.counts))
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// Quantile returns an approximate q-quantile of the observed
// distribution by linear interpolation within the bucket the exact rank
// falls in (the classic Prometheus histogram_quantile estimator). The
// error is bounded by the width of that bucket: exact only if
// observations are uniform within it. Observations above the last finite
// bound clamp to that bound (the +Inf bucket has no width to interpolate
// over). q is clamped to [0,1]; an empty histogram reports 0.
func (h *Histogram) Quantile(q float64) float64 {
	return BucketQuantile(h.bounds, h.BucketCounts(), q)
}

// BucketQuantile is Histogram.Quantile over raw gathered data: bounds
// are ascending upper bounds and buckets the per-bucket non-cumulative
// counts with the +Inf bucket last (the Sample.Bounds/Sample.Buckets
// layout), so exporters and offline analysis can compute quantiles from
// a snapshot without the live histogram.
func BucketQuantile(bounds []float64, buckets []int64, q float64) float64 {
	var n int64
	for _, c := range buckets {
		n += c
	}
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := math.Ceil(q * float64(n))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range buckets {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i >= len(bounds) {
			// +Inf bucket: clamp to the last finite bound.
			if len(bounds) == 0 {
				return 0
			}
			return bounds[len(bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = bounds[i-1]
		}
		hi := bounds[i]
		// Position of the rank within this bucket's count.
		into := rank - float64(cum-c)
		return lo + (hi-lo)*into/float64(c)
	}
	return bounds[len(bounds)-1]
}

// Sample is one gathered metric value. For histograms Value holds the
// observation count and the distribution fields are populated.
type Sample struct {
	Name   string // family name, without labels
	Full   string // canonical name including labels
	Labels []Label
	Kind   Kind
	Help   string
	Value  float64
	// Histogram-only fields.
	Bounds  []float64
	Buckets []int64
	Sum     float64
}

// metric is one registered entry.
type metric struct {
	name   string
	full   string
	labels []Label
	kind   Kind
	help   string

	counter  *Counter
	fcounter *FloatCounter
	fn       func() float64
	hist     *Histogram
}

// Registry holds a fixed set of metrics registered at startup. Reads
// (Gather, Value) may run concurrently with hot-path updates.
type Registry struct {
	mu      sync.RWMutex
	metrics []*metric
	byFull  map[string]*metric
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byFull: map[string]*metric{}}
}

// register adds a metric, panicking on duplicate identity (a programming
// error: metrics are registered once at startup).
func (r *Registry) register(m *metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m.full = renderName(m.name, m.labels)
	if _, dup := r.byFull[m.full]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %s", m.full))
	}
	r.byFull[m.full] = m
	r.metrics = append(r.metrics, m)
}

// Counter registers and returns a counter.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	r.register(&metric{name: name, labels: labels, kind: KindCounter, help: help, counter: c})
	return c
}

// FloatCounter registers and returns a float counter (exported as a
// Prometheus counter).
func (r *Registry) FloatCounter(name, help string, labels ...Label) *FloatCounter {
	c := &FloatCounter{}
	r.register(&metric{name: name, labels: labels, kind: KindCounter, help: help, fcounter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at gather
// time — for monotone quantities another component already tracks (the
// daemon's action counters, the simulator's emergency count), so the
// interactive status and the exported metrics can never disagree.
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, labels: labels, kind: KindCounter, help: help, fn: fn})
}

// Gauge registers a gauge backed by a callback evaluated at gather time.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	r.register(&metric{name: name, labels: labels, kind: KindGauge, help: help, fn: fn})
}

// Histogram registers and returns a fixed-bucket histogram. Bounds must be
// ascending upper bounds; the +Inf bucket is implicit.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: append([]float64(nil), bounds...)}
	h.counts = make([]atomic.Int64, len(bounds)+1)
	r.register(&metric{name: name, labels: labels, kind: KindHistogram, help: help, hist: h})
	return h
}

// value reads a metric's scalar value.
func (m *metric) value() float64 {
	switch {
	case m.counter != nil:
		return float64(m.counter.Value())
	case m.fcounter != nil:
		return m.fcounter.Value()
	case m.fn != nil:
		return m.fn()
	case m.hist != nil:
		return float64(m.hist.Count())
	}
	return 0
}

// Gather snapshots every metric, sorted by canonical name.
func (r *Registry) Gather() []Sample {
	r.mu.RLock()
	metrics := append([]*metric(nil), r.metrics...)
	r.mu.RUnlock()
	out := make([]Sample, 0, len(metrics))
	for _, m := range metrics {
		s := Sample{
			Name: m.name, Full: m.full, Labels: m.labels,
			Kind: m.kind, Help: m.help, Value: m.value(),
		}
		if m.hist != nil {
			s.Bounds = m.hist.Bounds()
			s.Buckets = m.hist.BucketCounts()
			s.Sum = m.hist.Sum()
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Full < out[j].Full })
	return out
}

// Value looks up one metric by canonical name (including any label
// suffix) and returns its scalar value.
func (r *Registry) Value(full string) (float64, bool) {
	r.mu.RLock()
	m, ok := r.byFull[full]
	r.mu.RUnlock()
	if !ok {
		return 0, false
	}
	return m.value(), true
}
