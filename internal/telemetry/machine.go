package telemetry

import (
	"strconv"

	"avfs/internal/chip"
	"avfs/internal/clock"
	"avfs/internal/droop"
	"avfs/internal/sim"
	"avfs/internal/vmin"
)

// Metric names of the machine-level instrumentation. Shared by the sysfs
// bridge, the avfsd status command and the tests so they can never drift.
const (
	MetricVoltageMV      = "avfs_voltage_millivolts"
	MetricRequiredVminMV = "avfs_required_vmin_millivolts"
	MetricGuardMarginMV  = "avfs_guard_margin_millivolts"
	MetricBusyCores      = "avfs_busy_cores"
	MetricUtilizedPMDs   = "avfs_utilized_pmds"
	MetricDroopClass     = "avfs_droop_class"
	MetricPowerWatts     = "avfs_power_watts"
	MetricEnergyJoules   = "avfs_energy_joules_total"
	MetricMemUtil        = "avfs_mem_utilization"
	MetricSimSeconds     = "avfs_sim_seconds"
	MetricTemperatureC   = "avfs_die_temperature_celsius"
	MetricEmergencies    = "avfs_voltage_emergencies_total"
	MetricEmergChecks    = "avfs_emergency_checks_total"
	MetricMachineEvents  = "avfs_machine_events_total"
	MetricPMDFreqMHz     = "avfs_pmd_frequency_mhz"
	MetricVminEnvelope   = "avfs_vmin_envelope_millivolts"

	// Steady-state tick-coalescing observables (see docs/PERFORMANCE.md).
	MetricSimTicks          = "avfs_sim_ticks_total"
	MetricSimTicksCoalesced = "avfs_sim_ticks_coalesced_total"
	MetricSimSteadyRatio    = "avfs_sim_steady_ratio"
)

// WireMachine instruments a simulated machine: registers its electrical
// and scheduling state as gauges, counts machine events per kind, and
// forwards every event of the machine's log onto the tracer bus as
// DecMachineEvent entries. Either reg or tr may be nil.
func WireMachine(m *sim.Machine, reg *Registry, tr *Tracer) {
	var evCounters [sim.EvEmergency + 1]*Counter
	if reg != nil {
		spec := m.Spec
		reg.Gauge(MetricVoltageMV, "Programmed PCP supply voltage.",
			func() float64 { return float64(m.Chip.Voltage()) })
		reg.Gauge(MetricRequiredVminMV, "True safe Vmin of the instantaneous configuration.",
			func() float64 { return float64(m.RequiredSafeVmin()) })
		reg.Gauge(MetricGuardMarginMV, "Programmed voltage minus the true safe Vmin.",
			func() float64 { return float64(m.Chip.Voltage() - m.RequiredSafeVmin()) })
		reg.Gauge(MetricBusyCores, "Cores currently hosting threads.",
			func() float64 { return float64(len(m.ActiveCores())) })
		reg.Gauge(MetricUtilizedPMDs, "PMDs with at least one busy core.",
			func() float64 { return float64(m.UtilizedPMDCount()) })
		reg.Gauge(MetricDroopClass, "Table II droop magnitude class (0-3).",
			func() float64 { return float64(droop.ClassOfPMDs(spec, m.UtilizedPMDCount())) })
		reg.Gauge(MetricPowerWatts, "Instantaneous power of the last tick.",
			m.LastPower)
		reg.Gauge(MetricEnergyJoules, "Accumulated energy.",
			func() float64 { return m.Meter.Energy() })
		reg.Gauge(MetricMemUtil, "Memory-path utilization of the last tick.",
			m.MemUtilization)
		reg.Gauge(MetricSimSeconds, "Simulation time.", m.Now)
		reg.CounterFunc(MetricEmergencies, "Instants with programmed voltage below the requirement.",
			func() float64 { return float64(len(m.Emergencies())) })
		reg.CounterFunc(MetricEmergChecks, "Voltage-emergency evaluations performed.",
			func() float64 { return float64(m.EmergencyChecks()) })
		reg.CounterFunc(MetricSimTicks, "Simulator ticks committed.",
			func() float64 { return float64(m.Ticks()) })
		reg.CounterFunc(MetricSimTicksCoalesced, "Ticks replayed from the steady-state cache in multi-tick batches.",
			func() float64 { return float64(m.CoalescedTicks()) })
		reg.Gauge(MetricSimSteadyRatio, "Fraction of committed ticks that were coalesced.",
			func() float64 {
				if t := m.Ticks(); t > 0 {
					return float64(m.CoalescedTicks()) / float64(t)
				}
				return 0
			})
		for p := 0; p < spec.PMDs(); p++ {
			pmd := chip.PMDID(p)
			reg.Gauge(MetricPMDFreqMHz, "Programmed PMD clock frequency.",
				func() float64 { return float64(m.Chip.PMDFreq(pmd)) },
				Label{"pmd", strconv.Itoa(p)})
		}
		// The static Table II envelope (what the daemon programs), so an
		// exported scrape carries the policy table alongside the live
		// state it explains.
		for _, fc := range []clock.FreqClass{clock.FullSpeed, clock.HalfSpeed, clock.DividedLow} {
			if fc == clock.DividedLow && spec.Model != chip.XGene2 {
				continue
			}
			for dc := 0; dc < droop.NumClasses; dc++ {
				env := envelopeOfClass(spec, fc, dc)
				reg.Gauge(MetricVminEnvelope, "Safe-Vmin class envelope (Table II).",
					func() float64 { return float64(env) },
					Label{"freq_class", fc.String()},
					Label{"droop_class", strconv.Itoa(dc)})
			}
		}
		for k := sim.EvSubmit; k <= sim.EvEmergency; k++ {
			evCounters[k] = reg.Counter(MetricMachineEvents,
				"Machine events by kind.", Label{"kind", k.String()})
		}
	}
	if reg == nil && tr == nil {
		return
	}
	m.Subscribe(func(e sim.Event) {
		if reg != nil && int(e.Kind) < len(evCounters) && evCounters[e.Kind] != nil {
			evCounters[e.Kind].Inc()
		}
		if tr != nil && tr.Active() {
			tr.Emit(Decision{
				At:     e.At,
				Kind:   DecMachineEvent,
				Rule:   e.Kind.String(),
				Proc:   e.Proc,
				Detail: e.Detail,
			})
		}
	})
}

// envelopeOfClass evaluates the Table II envelope for a droop class by
// picking a representative utilized-PMD count inside the class.
func envelopeOfClass(spec *chip.Spec, fc clock.FreqClass, droopClass int) chip.Millivolts {
	utilized := [droop.NumClasses]int{1, 3, 5, 9}[droopClass]
	if utilized > spec.PMDs() {
		utilized = spec.PMDs()
	}
	return vmin.ClassEnvelope(spec, fc, utilized)
}
