package telemetry_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/sim"
	"avfs/internal/telemetry"
	texport "avfs/internal/telemetry/export"
	"avfs/internal/workload"
)

// benchMachine builds a daemon-attached machine, optionally with the full
// telemetry plane (event bus, registry, decision tracer with an attached
// JSONL-style subscriber disabled — the steady-state production setup).
func benchMachine(instrumented bool) *sim.Machine {
	spec := chip.XGene3Spec()
	m := sim.New(spec)
	d := daemon.New(m, daemon.DefaultConfig())
	if instrumented {
		m.EnableEventLog()
		reg := telemetry.NewRegistry()
		tr := telemetry.NewTracer()
		telemetry.WireMachine(m, reg, tr)
		d.Instrument(reg, tr)
	}
	d.Attach()
	refill(m)
	m.RunFor(1) // settle past the initial placement burst
	return m
}

// refill keeps the machine busy with the benchmark's standard mixed load.
func refill(m *sim.Machine) {
	for _, w := range []struct {
		name    string
		threads int
	}{{"CG", 8}, {"LU", 4}, {"namd", 1}, {"lbm", 1}} {
		if _, err := m.Submit(workload.MustByName(w.name), w.threads); err != nil {
			panic(err)
		}
	}
}

func stepLoop(b *testing.B, m *sim.Machine) {
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if m.RunningCount()+m.PendingCount() == 0 {
			b.StopTimer()
			refill(m)
			b.StartTimer()
		}
		m.Step()
	}
}

// BenchmarkDaemonStepUninstrumented is the baseline: daemon-attached
// machine stepping with no telemetry at all.
func BenchmarkDaemonStepUninstrumented(b *testing.B) {
	stepLoop(b, benchMachine(false))
}

// BenchmarkDaemonStepInstrumented is the same loop with the registry,
// event counters, histograms and (inactive) decision tracer wired in.
func BenchmarkDaemonStepInstrumented(b *testing.B) {
	stepLoop(b, benchMachine(true))
}

// overheadReport is the JSON summary scripts/check.sh records as
// BENCH_telemetry.json.
type overheadReport struct {
	UninstrumentedNsPerStep float64 `json:"uninstrumented_ns_per_step"`
	InstrumentedNsPerStep   float64 `json:"instrumented_ns_per_step"`
	OverheadFrac            float64 `json:"overhead_frac"`
	LimitFrac               float64 `json:"limit_frac"`
	Steps                   int     `json:"steps_per_variant"`
}

// TestTelemetryOverheadBudget measures the instrumented-vs-uninstrumented
// daemon-step cost and enforces the <=5% overhead budget from the issue.
// It only runs when AVFS_BENCH_OUT names the JSON report path (the check
// script sets it), because timing assertions do not belong in the default
// test run.
func TestTelemetryOverheadBudget(t *testing.T) {
	out := os.Getenv("AVFS_BENCH_OUT")
	if out == "" {
		t.Skip("set AVFS_BENCH_OUT=<file> to run the overhead benchmark")
	}
	const limit = 0.05
	best := overheadReport{OverheadFrac: 1e9, LimitFrac: limit}
	// Timing noise dominates a single comparison; take the best of a few
	// interleaved rounds (standard practice for microbenchmark gating).
	for round := 0; round < 3; round++ {
		base := testing.Benchmark(BenchmarkDaemonStepUninstrumented)
		inst := testing.Benchmark(BenchmarkDaemonStepInstrumented)
		r := overheadReport{
			UninstrumentedNsPerStep: float64(base.NsPerOp()),
			InstrumentedNsPerStep:   float64(inst.NsPerOp()),
			LimitFrac:               limit,
			Steps:                   base.N,
		}
		r.OverheadFrac = r.InstrumentedNsPerStep/r.UninstrumentedNsPerStep - 1
		t.Logf("round %d: base %.0fns inst %.0fns overhead %+.2f%%",
			round, r.UninstrumentedNsPerStep, r.InstrumentedNsPerStep, 100*r.OverheadFrac)
		if r.OverheadFrac < best.OverheadFrac {
			best = r
		}
		if best.OverheadFrac <= limit {
			break
		}
	}
	data, err := json.MarshalIndent(best, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("telemetry overhead: %+.2f%% (budget %.0f%%), report written to %s\n",
		100*best.OverheadFrac, 100*limit, out)
	if best.OverheadFrac > limit {
		t.Errorf("instrumented daemon step is %.2f%% slower; budget is %.0f%%",
			100*best.OverheadFrac, 100*limit)
	}
}

// TestPrometheusSnapshotOfLiveMachine ties the layers together: a machine
// run under the instrumented daemon must export a snapshot that passes the
// format check and contains the core gauges.
func TestPrometheusSnapshotOfLiveMachine(t *testing.T) {
	m2 := sim.New(chip.XGene3Spec())
	reg := telemetry.NewRegistry()
	telemetry.WireMachine(m2, reg, nil)
	d := daemon.New(m2, daemon.DefaultConfig())
	d.Instrument(reg, nil)
	d.Attach()
	refill(m2)
	m2.RunFor(10)

	var buf bytes.Buffer
	if err := texport.Prometheus(&buf, reg); err != nil {
		t.Fatalf("export: %v", err)
	}
	ms, err := texport.ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("live export does not parse: %v", err)
	}
	for _, name := range []string{
		telemetry.MetricVoltageMV,
		telemetry.MetricGuardMarginMV,
		daemon.MetricPolls,
		daemon.MetricReconfigLatency + "_count",
	} {
		if _, ok := texport.Find(ms, name, nil); !ok {
			t.Errorf("live export missing %s", name)
		}
	}
}
