package telemetry

import (
	"sync/atomic"
	"time"
)

// Span is one completed operation of a causal request trace: what ran,
// how long it took, and the links that stitch the operations of one
// request into a tree. Spans carry three correlation identities — the
// request ID minted by the HTTP middleware, the session the work belongs
// to, and the async job handle (when the work outlived its request) — so
// a single request can be followed from the HTTP edge through the actor
// mailbox, the worker pool and the simulator's tick-batch commits.
//
// Timestamps are monotonic: StartNs is nanoseconds since the owning
// ring's epoch (never wall time, so spans order correctly across clock
// adjustments), DurationNs is the span's measured length.
type Span struct {
	// ID is process-unique (NextSpanID); Parent links the span into its
	// request tree, 0 marks a root.
	ID     int64 `json:"id"`
	Parent int64 `json:"parent,omitempty"`
	// Request/Session/Job are the correlation identities (any may be
	// empty: library callers have no request ID, sync runs no job).
	Request string `json:"request_id,omitempty"`
	Session string `json:"session,omitempty"`
	Job     string `json:"job,omitempty"`
	// Name classifies the operation ("http.request", "actor.queue",
	// "job", "runner.cell", "sim.advance").
	Name string `json:"name"`
	// StartNs is monotonic nanoseconds since the ring epoch.
	StartNs    int64 `json:"start_ns"`
	DurationNs int64 `json:"duration_ns"`
	// Ticks counts simulator tick commits covered by the span (advance
	// spans only).
	Ticks uint64 `json:"ticks,omitempty"`
	// Status is "" for success, "error" or "canceled" otherwise.
	Status string `json:"status,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// spanIDs allocates process-unique span IDs. A process-wide allocator —
// rather than per-ring — lets a span's ID be minted before the owning
// session (and therefore ring) is known, which is exactly the HTTP
// middleware's situation.
var spanIDs atomic.Int64

// NextSpanID returns a fresh process-unique span ID (first ID is 1; 0
// always means "no span").
func NextSpanID() int64 { return spanIDs.Add(1) }

// spanRec stamps a stored span with its absolute ring index, so readers
// can detect a slot that was overwritten underneath their cursor.
type spanRec struct {
	abs int64
	sp  Span
}

// SpanRing is a bounded lock-free ring of completed spans with an
// absolute-index cursor, the span analogue of the session decision-trace
// ring: writers never block (an atomic fetch-add claims a slot, an atomic
// pointer store publishes the record), the newest capacity records are
// retained, and Since reports — rather than silently skips — a cursor
// that has fallen off the retained window.
type SpanRing struct {
	epoch time.Time
	slots []atomic.Pointer[spanRec]
	head  atomic.Int64 // absolute index of the next record to be written
}

// DefaultSpanCap is the default per-session ring capacity. A request
// produces a handful of spans and a long run a few dozen (chunk spans are
// budgeted, see the service layer), so 4096 holds the recent window of
// even a busy session.
const DefaultSpanCap = 4096

// NewSpanRing creates a ring retaining the newest capacity spans
// (<= 0 selects DefaultSpanCap).
func NewSpanRing(capacity int) *SpanRing {
	if capacity <= 0 {
		capacity = DefaultSpanCap
	}
	return &SpanRing{epoch: time.Now(), slots: make([]atomic.Pointer[spanRec], capacity)}
}

// Cap returns the ring capacity.
func (r *SpanRing) Cap() int { return len(r.slots) }

// Now returns monotonic nanoseconds since the ring epoch — the StartNs
// timebase.
func (r *SpanRing) Now() int64 { return time.Since(r.epoch).Nanoseconds() }

// Stamp converts a time.Time captured by the caller into the ring's
// monotonic StartNs timebase.
func (r *SpanRing) Stamp(t time.Time) int64 { return t.Sub(r.epoch).Nanoseconds() }

// Append publishes one completed span. A zero ID is filled from
// NextSpanID. Safe for concurrent use; a nil ring drops the span (the
// tracing-off path costs one nil check).
func (r *SpanRing) Append(sp Span) {
	if r == nil {
		return
	}
	if sp.ID == 0 {
		sp.ID = NextSpanID()
	}
	idx := r.head.Add(1) - 1
	r.slots[idx%int64(len(r.slots))].Store(&spanRec{abs: idx, sp: sp})
}

// Len returns how many spans have ever been appended (the next cursor).
func (r *SpanRing) Len() int64 {
	if r == nil {
		return 0
	}
	return r.head.Load()
}

// Since returns the retained spans with absolute index >= cursor in
// append order, the next cursor to poll from, and whether the cursor had
// fallen behind the retained window (records between the cursor and the
// oldest retained span were dropped — the caller must know it missed
// data rather than silently resuming).
func (r *SpanRing) Since(cursor int64) (spans []Span, next int64, truncated bool) {
	if r == nil {
		return nil, 0, false
	}
	head := r.head.Load()
	oldest := head - int64(len(r.slots))
	if oldest < 0 {
		oldest = 0
	}
	if cursor < 0 {
		cursor = 0
	}
	if cursor < oldest {
		truncated = true
		cursor = oldest
	}
	for i := cursor; i < head; i++ {
		rec := r.slots[i%int64(len(r.slots))].Load()
		if rec == nil || rec.abs != i {
			// nil / stale: a writer claimed the slot but has not published
			// yet; newer: the record was overwritten after we read head.
			if rec != nil && rec.abs > i {
				truncated = true
			}
			continue
		}
		spans = append(spans, rec.sp)
	}
	return spans, head, truncated
}

// SpanHandle is an in-flight span: Start stamps the begin time, End
// measures the duration and publishes to the ring. Every method is
// nil-safe so call sites need no tracing-enabled branches.
type SpanHandle struct {
	ring  *SpanRing
	start time.Time
	sp    Span
}

// Start opens a span on the ring. parent is the enclosing span's ID (0
// for a root); request is the correlation ID. Returns nil on a nil ring.
func (r *SpanRing) Start(name string, parent int64, request string) *SpanHandle {
	if r == nil {
		return nil
	}
	now := time.Now()
	return &SpanHandle{
		ring:  r,
		start: now,
		sp: Span{
			ID:      NextSpanID(),
			Parent:  parent,
			Request: request,
			Name:    name,
			StartNs: r.Stamp(now),
		},
	}
}

// ID returns the span's ID (0 on a nil handle), for parenting children.
func (h *SpanHandle) ID() int64 {
	if h == nil {
		return 0
	}
	return h.sp.ID
}

// SetSession attaches the session correlation identity.
func (h *SpanHandle) SetSession(id string) {
	if h != nil {
		h.sp.Session = id
	}
}

// SetJob attaches the async-job correlation identity.
func (h *SpanHandle) SetJob(id string) {
	if h != nil {
		h.sp.Job = id
	}
}

// SetStatus records the outcome ("" = ok) and an optional detail.
func (h *SpanHandle) SetStatus(status, detail string) {
	if h != nil {
		h.sp.Status = status
		h.sp.Detail = detail
	}
}

// AddTicks accumulates simulator tick commits covered by the span.
func (h *SpanHandle) AddTicks(n uint64) {
	if h != nil {
		h.sp.Ticks += n
	}
}

// End stamps the duration and publishes the span.
func (h *SpanHandle) End() {
	if h == nil {
		return
	}
	h.sp.DurationNs = time.Since(h.start).Nanoseconds()
	h.ring.Append(h.sp)
}
