package export

import (
	"bufio"
	"encoding/json"
	"io"
	"sync"

	"avfs/internal/telemetry"
)

// JSONL streams decision-trace events as one JSON object per line. It is
// safe to attach as a tracer subscriber; encoding errors are latched (the
// stream is best-effort — a full disk must not take the daemon down) and
// reported by Err.
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	bw  *bufio.Writer
	err error
}

// NewJSONL creates a JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{enc: json.NewEncoder(bw), bw: bw}
}

// Write encodes one decision as a line.
func (j *JSONL) Write(d telemetry.Decision) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(d)
}

// Attach subscribes the sink to a tracer.
func (j *JSONL) Attach(tr *telemetry.Tracer) { tr.Subscribe(j.Write) }

// Flush pushes buffered lines to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.err != nil {
		return j.err
	}
	j.err = j.bw.Flush()
	return j.err
}

// Err returns the first error the sink hit, if any.
func (j *JSONL) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// ReadJSONL decodes a decision-trace stream back into events — the
// consumer side for tests and offline analysis of dumped traces.
func ReadJSONL(r io.Reader) ([]telemetry.Decision, error) {
	dec := json.NewDecoder(r)
	var out []telemetry.Decision
	for {
		var d telemetry.Decision
		if err := dec.Decode(&d); err != nil {
			if err == io.EOF {
				return out, nil
			}
			return out, err
		}
		out = append(out, d)
	}
}
