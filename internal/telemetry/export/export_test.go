package export

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"avfs/internal/telemetry"
)

func testRegistry() *telemetry.Registry {
	r := telemetry.NewRegistry()
	c := r.Counter("avfs_test_events_total", "number of test events", telemetry.Label{Key: "kind", Value: "submit"})
	c.Add(3)
	c2 := r.Counter("avfs_test_events_total", "number of test events", telemetry.Label{Key: "kind", Value: "finish"})
	c2.Add(1)
	r.Gauge("avfs_test_voltage_millivolts", "current rail voltage", func() float64 { return 915.5 })
	h := r.Histogram("avfs_test_latency_seconds", "reconfiguration latency", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	fc := r.FloatCounter("avfs_test_residency_seconds", "time in class", telemetry.Label{Key: "class", Value: "max"})
	fc.Add(12.5)
	return r
}

func TestPrometheusExportParses(t *testing.T) {
	var buf bytes.Buffer
	if err := Prometheus(&buf, testRegistry()); err != nil {
		t.Fatalf("export: %v", err)
	}
	ms, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("export does not parse:\n%s\nerror: %v", buf.String(), err)
	}
	if m, ok := Find(ms, "avfs_test_events_total", map[string]string{"kind": "submit"}); !ok || m.Value != 3 {
		t.Errorf("events{kind=submit} = %+v (ok=%v), want 3", m, ok)
	}
	if m, ok := Find(ms, "avfs_test_voltage_millivolts", nil); !ok || m.Value != 915.5 {
		t.Errorf("voltage = %+v (ok=%v), want 915.5", m, ok)
	}
	// Histogram expands to cumulative buckets plus _sum and _count.
	if m, ok := Find(ms, "avfs_test_latency_seconds_bucket", map[string]string{"le": "0.1"}); !ok || m.Value != 2 {
		t.Errorf("bucket le=0.1 = %+v (ok=%v), want cumulative 2", m, ok)
	}
	if m, ok := Find(ms, "avfs_test_latency_seconds_bucket", map[string]string{"le": "+Inf"}); !ok || m.Value != 3 {
		t.Errorf("bucket le=+Inf = %+v (ok=%v), want 3", m, ok)
	}
	if m, ok := Find(ms, "avfs_test_latency_seconds_count", nil); !ok || m.Value != 3 {
		t.Errorf("count = %+v (ok=%v), want 3", m, ok)
	}
	if m, ok := Find(ms, "avfs_test_latency_seconds_sum", nil); !ok || math.Abs(m.Value-5.055) > 1e-9 {
		t.Errorf("sum = %+v (ok=%v), want 5.055", m, ok)
	}
}

func TestPrometheusSingleTypeHeaderPerFamily(t *testing.T) {
	var buf bytes.Buffer
	if err := Prometheus(&buf, testRegistry()); err != nil {
		t.Fatalf("export: %v", err)
	}
	if n := strings.Count(buf.String(), "# TYPE avfs_test_events_total "); n != 1 {
		t.Errorf("TYPE header for labelled family appears %d times, want 1", n)
	}
	if !strings.Contains(buf.String(), "# HELP avfs_test_voltage_millivolts current rail voltage") {
		t.Error("missing HELP line for gauge")
	}
}

// TestPrometheusLabelEscapingRoundTrip pushes hostile label values —
// backslashes, quotes, newlines — through the exporter and back through
// the validating parser: the values must survive exactly, and nothing in
// the output may break line framing.
func TestPrometheusLabelEscapingRoundTrip(t *testing.T) {
	r := telemetry.NewRegistry()
	hostile := map[string]string{
		"quoted":  `say "hi"`,
		"slashed": `C:\temp\x`,
		"newline": "line1\nline2",
		"mixed":   "a\\\"b\nc",
	}
	for k, v := range hostile {
		r.Counter("avfs_escape_total", "escape test", telemetry.Label{Key: "case", Value: v},
			telemetry.Label{Key: "name", Value: k}).Add(1)
	}
	var buf bytes.Buffer
	if err := Prometheus(&buf, r); err != nil {
		t.Fatalf("export: %v", err)
	}
	ms, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("escaped export does not parse:\n%s\nerror: %v", buf.String(), err)
	}
	for k, v := range hostile {
		m, ok := Find(ms, "avfs_escape_total", map[string]string{"name": k})
		if !ok {
			t.Errorf("case %s missing from parsed export", k)
			continue
		}
		if m.Labels["case"] != v {
			t.Errorf("case %s: round-tripped %q, want %q", k, m.Labels["case"], v)
		}
	}
}

// TestPrometheusApproxQuantiles checks the derived _approx_quantile
// gauge family: present, typed, one series per requested quantile, and
// consistent with BucketQuantile on the same data.
func TestPrometheusApproxQuantiles(t *testing.T) {
	var buf bytes.Buffer
	if err := Prometheus(&buf, testRegistry()); err != nil {
		t.Fatalf("export: %v", err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE avfs_test_latency_seconds_approx_quantile gauge"); n != 1 {
		t.Fatalf("quantile family TYPE line appears %d times, want 1:\n%s", n, out)
	}
	ms, err := ParsePrometheus(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("export does not parse: %v", err)
	}
	// testRegistry's histogram: 0.005, 0.05, 5 over bounds {0.01, 0.1, 1}.
	want := telemetry.BucketQuantile([]float64{0.01, 0.1, 1}, []int64{1, 1, 0, 1}, 0.5)
	m, ok := Find(ms, "avfs_test_latency_seconds_approx_quantile", map[string]string{"quantile": "0.5"})
	if !ok {
		t.Fatal("missing approx-quantile series for quantile=0.5")
	}
	if math.Abs(m.Value-want) > 1e-9 {
		t.Errorf("exported p50 = %v, want %v", m.Value, want)
	}
	for _, q := range []string{"0.9", "0.99", "0.999"} {
		if _, ok := Find(ms, "avfs_test_latency_seconds_approx_quantile", map[string]string{"quantile": q}); !ok {
			t.Errorf("missing approx-quantile series for quantile=%s", q)
		}
	}
}

func TestParsePrometheusRejectsGarbage(t *testing.T) {
	bad := []string{
		"no_value_metric\n",
		"bad-name 1\n",
		`m{l="unterminated} 1` + "\n",
		"# TYPE m counter\n# TYPE m gauge\nm 1\n",
		"m not_a_number\n",
	}
	for _, in := range bad {
		if _, err := ParsePrometheus(strings.NewReader(in)); err == nil {
			t.Errorf("ParsePrometheus accepted %q", in)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := telemetry.NewTracer()
	var buf bytes.Buffer
	sink := NewJSONL(&buf)
	sink.Attach(tr)

	want := []telemetry.Decision{
		{At: 1.5, Kind: telemetry.DecClassify, Rule: "l3c>=threshold+hyst", Proc: 2,
			Class: "memory", L3CRate: 4150, UtilizedPMDs: 3, DroopClass: 2},
		{At: 1.5, Kind: telemetry.DecGuardRaise, Rule: "fail-safe-raise", Reconfig: 7,
			Proc: -1, FromMV: 880, ToMV: 940, RequiredMV: 940},
		{At: 1.6, Kind: telemetry.DecSettle, Rule: "settle-to-safe-vmin", Reconfig: 7,
			Proc: -1, FromMV: 940, ToMV: 895, RequiredMV: 895, UtilizedPMDs: 3, DroopClass: 1},
	}
	for _, d := range want {
		tr.Emit(d)
	}
	if err := sink.Flush(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-tripped %d decisions, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("decision %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

func TestJSONLLatchesWriteError(t *testing.T) {
	sink := NewJSONL(failWriter{})
	sink.Write(telemetry.Decision{Kind: telemetry.DecClassify})
	sink.Flush()
	if sink.Err() == nil {
		t.Error("sink must latch the underlying write error")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errShort }

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }

func FuzzParsePrometheus(f *testing.F) {
	var buf bytes.Buffer
	_ = Prometheus(&buf, testRegistry())
	f.Add(buf.String())
	f.Add("# HELP m h\n# TYPE m counter\nm 1\n")
	f.Add(`m{a="b",c="d"} 2.5` + "\n")
	f.Add("m{} NaN\n")
	f.Fuzz(func(t *testing.T, in string) {
		ms, err := ParsePrometheus(strings.NewReader(in))
		if err != nil {
			return
		}
		// Whatever parses must re-expose sane names.
		for _, m := range ms {
			if m.Name == "" {
				t.Errorf("parsed metric with empty name from %q", in)
			}
		}
	})
}
