// Package export renders the telemetry registry and decision trace in
// interchange formats: Prometheus text exposition for metrics, JSONL for
// the decision trace. Both are io.Writer-based so tests and the CLI use
// the same code paths a scrape endpoint would.
package export

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"avfs/internal/telemetry"
)

// Prometheus writes every registry metric in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE header per metric
// family, histograms expanded into cumulative _bucket/_sum/_count series.
func Prometheus(w io.Writer, reg *telemetry.Registry) error {
	bw := bufio.NewWriter(w)
	samples := reg.Gather()
	// Group into families (same name), keeping the gathered name order.
	headerDone := map[string]bool{}
	for _, s := range samples {
		if !headerDone[s.Name] {
			headerDone[s.Name] = true
			if s.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", s.Name, escapeHelp(s.Help))
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", s.Name, s.Kind)
		}
		if s.Kind == telemetry.KindHistogram {
			writeHistogram(bw, s)
			continue
		}
		fmt.Fprintf(bw, "%s %s\n", telemetryName(s.Name, s.Labels), formatValue(s.Value))
	}
	// Derived approximate quantiles for every histogram family, emitted
	// after the main loop so each _approx_quantile family stays contiguous
	// under a single TYPE line even when the source family has many label
	// sets.
	quantileDone := map[string]bool{}
	for _, s := range samples {
		if s.Kind != telemetry.KindHistogram {
			continue
		}
		qname := s.Name + "_approx_quantile"
		if !quantileDone[qname] {
			quantileDone[qname] = true
			fmt.Fprintf(bw, "# HELP %s Approximate quantiles of %s (linear interpolation within fixed buckets).\n", qname, s.Name)
			fmt.Fprintf(bw, "# TYPE %s gauge\n", qname)
		}
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}, {"0.999", 0.999}} {
			v := telemetry.BucketQuantile(s.Bounds, s.Buckets, q.q)
			labels := append(append([]telemetry.Label(nil), s.Labels...),
				telemetry.Label{Key: "quantile", Value: q.label})
			fmt.Fprintf(bw, "%s %s\n", telemetryName(qname, labels), formatValue(v))
		}
	}
	return bw.Flush()
}

// writeHistogram expands one histogram sample into its series.
func writeHistogram(w io.Writer, s telemetry.Sample) {
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		le := "+Inf"
		if i < len(s.Bounds) {
			le = formatValue(s.Bounds[i])
		}
		fmt.Fprintf(w, "%s %d\n",
			telemetryName(s.Name+"_bucket", append(append([]telemetry.Label(nil), s.Labels...), telemetry.Label{Key: "le", Value: le})), cum)
	}
	fmt.Fprintf(w, "%s %s\n", telemetryName(s.Name+"_sum", s.Labels), formatValue(s.Sum))
	fmt.Fprintf(w, "%s %d\n", telemetryName(s.Name+"_count", s.Labels), cum)
}

// telemetryName renders name{labels} with exposition-format escaping.
func telemetryName(name string, labels []telemetry.Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabelValue escapes a label value per the Prometheus text
// exposition format: exactly backslash, double-quote and newline — and
// nothing else. Go's %q is close but wrong: it escapes other control and
// non-ASCII characters with \x/\u sequences the format does not define,
// which scrapers reject or mis-decode.
func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	b.Grow(len(v) + 8)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(v[i])
		}
	}
	return b.String()
}

// formatValue renders a float the way Prometheus clients do.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteSample renders one `name{k="v",...} value` exposition line with
// label keys sorted, so re-emitted samples (e.g. the router's aggregated
// scrape, which re-tags every node sample with a node label) are
// deterministic regardless of map iteration order.
func WriteSample(w io.Writer, name string, labels map[string]string, value float64) {
	if len(labels) == 0 {
		fmt.Fprintf(w, "%s %s\n", name, formatValue(value))
		return
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	ls := make([]telemetry.Label, len(keys))
	for i, k := range keys {
		ls[i] = telemetry.Label{Key: k, Value: labels[k]}
	}
	fmt.Fprintf(w, "%s %s\n", telemetryName(name, ls), formatValue(value))
}

// escapeHelp escapes newlines and backslashes in HELP text.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// ParsedMetric is one sample line of a Prometheus text exposition.
type ParsedMetric struct {
	Name   string
	Labels map[string]string
	Value  float64
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// ParsePrometheus reads a text exposition back, validating the format:
// metric and label names must be legal, values must parse, every sample's
// family must have a preceding TYPE line, and TYPE lines must not repeat.
// It is the format check the exporter tests run against, and a useful
// assertion helper for anything scraping the output.
func ParsePrometheus(r io.Reader) ([]ParsedMetric, error) {
	ms, _, err := ParsePrometheusTyped(r)
	return ms, err
}

// ParsePrometheusTyped is ParsePrometheus keeping the TYPE declarations:
// it additionally returns family name → kind ("counter", "gauge",
// "histogram"). The cluster router uses it to merge per-node scrapes
// into one exposition — samples re-tagged with a node label must be
// re-grouped under a single TYPE line per family, because duplicate TYPE
// lines are a format error (naive concatenation of node outputs is
// invalid).
func ParsePrometheusTyped(r io.Reader) ([]ParsedMetric, map[string]string, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	typed := map[string]string{}
	var out []ParsedMetric
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			fields := strings.Fields(text)
			if len(fields) >= 2 && (fields[1] == "TYPE" || fields[1] == "HELP") {
				if len(fields) < 3 {
					return nil, nil, fmt.Errorf("line %d: malformed %s comment", line, fields[1])
				}
				if fields[1] == "TYPE" {
					name := fields[2]
					if _, dup := typed[name]; dup {
						return nil, nil, fmt.Errorf("line %d: duplicate TYPE for %s", line, name)
					}
					if len(fields) < 4 {
						return nil, nil, fmt.Errorf("line %d: TYPE %s missing kind", line, name)
					}
					typed[name] = fields[3]
				}
			}
			continue
		}
		m, err := parseSampleLine(text)
		if err != nil {
			return nil, nil, fmt.Errorf("line %d: %v", line, err)
		}
		if familyOf(m.Name, typed) == "" {
			return nil, nil, fmt.Errorf("line %d: sample %s has no TYPE declaration", line, m.Name)
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	return out, typed, nil
}

// familyOf resolves a sample name to its declared family, accounting for
// the _bucket/_sum/_count suffixes of histograms.
func familyOf(name string, typed map[string]string) string {
	if _, ok := typed[name]; ok {
		return name
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base != name {
			if typed[base] == "histogram" {
				return base
			}
		}
	}
	return ""
}

// parseSampleLine parses `name{k="v",...} value`.
func parseSampleLine(text string) (ParsedMetric, error) {
	m := ParsedMetric{Labels: map[string]string{}}
	rest := text
	if i := strings.IndexAny(rest, "{ "); i >= 0 && rest[i] == '{' {
		m.Name = rest[:i]
		end := strings.LastIndexByte(rest, '}')
		if end < i {
			return m, fmt.Errorf("unterminated label set in %q", text)
		}
		if err := parseLabels(rest[i+1:end], m.Labels); err != nil {
			return m, err
		}
		rest = strings.TrimSpace(rest[end+1:])
	} else {
		fields := strings.Fields(rest)
		if len(fields) != 2 {
			return m, fmt.Errorf("malformed sample %q", text)
		}
		m.Name, rest = fields[0], fields[1]
	}
	if !metricNameRe.MatchString(m.Name) {
		return m, fmt.Errorf("illegal metric name %q", m.Name)
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
	if err != nil {
		return m, fmt.Errorf("bad value in %q: %v", text, err)
	}
	m.Value = v
	return m, nil
}

// parseLabels parses `k="v",k2="v2"` into dst.
func parseLabels(s string, dst map[string]string) error {
	s = strings.TrimSpace(s)
	for s != "" {
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return fmt.Errorf("malformed label in %q", s)
		}
		key := strings.TrimSpace(s[:eq])
		if !labelNameRe.MatchString(key) {
			return fmt.Errorf("illegal label name %q", key)
		}
		s = strings.TrimSpace(s[eq+1:])
		if len(s) == 0 || s[0] != '"' {
			return fmt.Errorf("label %s value not quoted", key)
		}
		val, rest, err := unquoteLabel(s)
		if err != nil {
			return err
		}
		dst[key] = val
		s = strings.TrimSpace(rest)
		if s != "" {
			if s[0] != ',' {
				return fmt.Errorf("expected ',' in label set at %q", s)
			}
			s = strings.TrimSpace(s[1:])
		}
	}
	return nil
}

// unquoteLabel consumes a leading quoted string, returning its value and
// the remainder.
func unquoteLabel(s string) (string, string, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", "", fmt.Errorf("dangling escape in %q", s)
			}
			i++
			switch s[i] {
			case 'n':
				b.WriteByte('\n')
			default:
				b.WriteByte(s[i])
			}
		case '"':
			return b.String(), s[i+1:], nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", "", fmt.Errorf("unterminated quote in %q", s)
}

// Find returns the first parsed metric matching name and (a subset of)
// labels, for test assertions.
func Find(ms []ParsedMetric, name string, labels map[string]string) (ParsedMetric, bool) {
	for _, m := range ms {
		if m.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if m.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return m, true
		}
	}
	return ParsedMetric{}, false
}

// Names returns the sorted distinct metric names of a parse result.
func Names(ms []ParsedMetric) []string {
	seen := map[string]bool{}
	for _, m := range ms {
		seen[m.Name] = true
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
