package telemetry

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// LatencyHist is a high-resolution log-bucketed latency histogram for
// tail-latency SLOs. Bucket upper bounds grow geometrically by latGrowth
// per bucket, and a quantile is reported as the geometric midpoint of the
// bucket the exact rank lands in, so the relative error of any reported
// quantile is bounded by sqrt(latGrowth)-1 — just under 1% — at every
// magnitude from nanoseconds to minutes. Observe is lock-free and
// allocation-free (one float log plus one atomic add), which is what lets
// the serving hot path observe every request and every tick-batch commit
// inside the existing <=5% telemetry overhead budget.
//
// Unlike the fixed-bucket Histogram, LatencyHist is not a Prometheus
// metric kind: SLO surfaces export its quantiles as gauges instead of
// shipping ~2200 cumulative bucket series per scrape.
type LatencyHist struct {
	counts [latBuckets]atomic.Int64
	n      atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

const (
	// latGrowth is the per-bucket geometric growth factor. The quantile
	// error bound is sqrt(1.02)-1 = 0.995%.
	latGrowth = 1.02
	// latBuckets covers [1ns, 2^63 ns): ceil(ln(2^63)/ln(1.02)) = 2206.
	latBuckets = 2206
)

var (
	latLn    = math.Log(latGrowth)
	latInvLn = 1 / latLn
)

// latIndex maps a nanosecond value onto its bucket. Values below 1ns
// clamp into bucket 0; the top bucket catches everything past the range.
func latIndex(ns int64) int {
	if ns <= 1 {
		return 0
	}
	i := int(math.Log(float64(ns)) * latInvLn)
	if i < 0 {
		return 0
	}
	if i >= latBuckets {
		return latBuckets - 1
	}
	return i
}

// latMid returns bucket i's geometric midpoint in nanoseconds — the value
// quantiles report.
func latMid(i int) float64 { return math.Exp((float64(i) + 0.5) * latLn) }

// NewLatencyHist creates an empty histogram.
func NewLatencyHist() *LatencyHist { return &LatencyHist{} }

// Observe records one duration. Lock-free, allocation-free.
func (h *LatencyHist) Observe(d time.Duration) { h.ObserveNs(d.Nanoseconds()) }

// ObserveNs records one duration given in nanoseconds.
func (h *LatencyHist) ObserveNs(ns int64) {
	if ns < 0 {
		ns = 0
	}
	h.counts[latIndex(ns)].Add(1)
	h.n.Add(1)
	h.sum.Add(ns)
}

// Count returns the number of observations.
func (h *LatencyHist) Count() int64 { return h.n.Load() }

// Quantile returns the q-quantile of all observations in nanoseconds
// (see LatencySnapshot.Quantile for the rank and error contract).
func (h *LatencyHist) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Snapshot copies the current state for windowed SLO math. Concurrent
// observations may land between bucket reads; the snapshot is a
// consistent-enough point-in-time view for quantile extraction (each
// bucket is internally exact, and rank extraction tolerates the count
// being off by in-flight observations).
func (h *LatencyHist) Snapshot() LatencySnapshot {
	s := LatencySnapshot{counts: make([]int64, latBuckets)}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.counts[i] = c
		s.n += c
	}
	s.sum = h.sum.Load()
	return s
}

// LatencySnapshot is an immutable point-in-time copy of a LatencyHist,
// the unit of windowed SLO math: subtract an older snapshot to get the
// distribution of just the interval between them.
type LatencySnapshot struct {
	counts []int64
	n      int64
	sum    int64
}

// Count returns the snapshot's observation count.
func (s LatencySnapshot) Count() int64 { return s.n }

// SumNs returns the snapshot's total observed nanoseconds.
func (s LatencySnapshot) SumNs() int64 { return s.sum }

// MeanNs returns the mean observation in nanoseconds (0 when empty).
func (s LatencySnapshot) MeanNs() float64 {
	if s.n == 0 {
		return 0
	}
	return float64(s.sum) / float64(s.n)
}

// Sub returns the distribution of observations recorded after old was
// taken: the per-bucket difference, clamped at zero.
func (s LatencySnapshot) Sub(old LatencySnapshot) LatencySnapshot {
	if old.counts == nil {
		return s
	}
	d := LatencySnapshot{counts: make([]int64, latBuckets)}
	for i := range s.counts {
		c := s.counts[i] - old.counts[i]
		if c < 0 {
			c = 0
		}
		d.counts[i] = c
		d.n += c
	}
	if d.sum = s.sum - old.sum; d.sum < 0 {
		d.sum = 0
	}
	return d
}

// Quantile returns the q-quantile in nanoseconds by exact rank: the
// ceil(q*n)-th smallest observation's bucket, reported as the bucket's
// geometric midpoint, so the result is within sqrt(latGrowth)-1 (<1%)
// of the true order statistic. q is clamped to [0,1]; an empty snapshot
// reports 0.
func (s LatencySnapshot) Quantile(q float64) float64 {
	if s.n == 0 || s.counts == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.n)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for i, c := range s.counts {
		cum += c
		if cum >= rank {
			return latMid(i)
		}
	}
	return latMid(latBuckets - 1)
}

// SLOTracker pairs a LatencyHist with an error counter and a rolling
// window, the per-surface unit of SLO accounting (one for request
// latency, one for advance latency). The window is the standard
// two-epoch rotation: snapshots are taken at epoch boundaries and the
// windowed view is everything since the previous epoch's start, so a
// query always covers between one and two windows of recent data without
// per-observation timestamping.
//
// All methods are nil-safe: a nil tracker (tracing disabled) costs one
// branch per call site.
type SLOTracker struct {
	hist   *LatencyHist
	window time.Duration

	// epochEnd mirrors epochStart+window as unix nanoseconds so the
	// Observe fast path can rule out a rotation with one atomic load
	// instead of taking the mutex on every observation.
	epochEnd atomic.Int64
	errs     atomic.Int64

	mu         sync.Mutex
	epochStart time.Time
	prevBase   LatencySnapshot
	prevErrs   int64
	curBase    LatencySnapshot
	curErrs    int64
}

// DefaultSLOWindow is the rolling window when the caller picks none.
const DefaultSLOWindow = time.Minute

// NewSLOTracker creates a tracker with the given rolling window
// (<= 0 selects DefaultSLOWindow).
func NewSLOTracker(window time.Duration) *SLOTracker {
	if window <= 0 {
		window = DefaultSLOWindow
	}
	return &SLOTracker{hist: NewLatencyHist(), window: window}
}

// Window returns the configured rolling window.
func (t *SLOTracker) Window() time.Duration {
	if t == nil {
		return 0
	}
	return t.window
}

// Observe records one operation: its latency, whether it failed, and the
// wall-clock time (injected so tests drive rotation with a fake clock).
func (t *SLOTracker) Observe(d time.Duration, failed bool, now time.Time) {
	if t == nil {
		return
	}
	// Fast path: inside the current epoch no rotation is possible, so the
	// whole record is lock-free (epochEnd load + errs add + histogram).
	if end := t.epochEnd.Load(); end != 0 && now.UnixNano() < end {
		if failed {
			t.errs.Add(1)
		}
		t.hist.Observe(d)
		return
	}
	t.mu.Lock()
	// Rotate before recording so an observation that itself crosses an
	// epoch boundary lands in the new window, not the snapshot baseline.
	t.rotateLocked(now)
	if failed {
		t.errs.Add(1)
	}
	t.mu.Unlock()
	t.hist.Observe(d)
}

// rotateLocked advances the epoch state to now. mu must be held.
func (t *SLOTracker) rotateLocked(now time.Time) {
	if t.epochStart.IsZero() {
		t.epochStart = now
		t.epochEnd.Store(now.Add(t.window).UnixNano())
		return
	}
	elapsed := now.Sub(t.epochStart)
	if elapsed < t.window {
		return
	}
	if elapsed >= 2*t.window {
		// Idle gap: both epochs are stale; restart the window empty.
		snap, errs := t.hist.Snapshot(), t.errs.Load()
		t.prevBase, t.prevErrs = snap, errs
		t.curBase, t.curErrs = snap, errs
		t.epochStart = now
		t.epochEnd.Store(now.Add(t.window).UnixNano())
		return
	}
	t.prevBase, t.prevErrs = t.curBase, t.curErrs
	t.curBase, t.curErrs = t.hist.Snapshot(), t.errs.Load()
	t.epochStart = t.epochStart.Add(t.window)
	t.epochEnd.Store(t.epochStart.Add(t.window).UnixNano())
}

// Totals returns the all-time distribution and error count.
func (t *SLOTracker) Totals() (LatencySnapshot, int64) {
	if t == nil {
		return LatencySnapshot{}, 0
	}
	return t.hist.Snapshot(), t.errs.Load()
}

// Windowed returns the rolling-window distribution and error count —
// every observation since the start of the previous epoch, covering
// between one and two windows — plus the span of wall time it covers.
func (t *SLOTracker) Windowed(now time.Time) (LatencySnapshot, int64, time.Duration) {
	if t == nil {
		return LatencySnapshot{}, 0, 0
	}
	t.mu.Lock()
	t.rotateLocked(now)
	base, errBase := t.prevBase, t.prevErrs
	errs := t.errs.Load() - errBase
	covered := t.window
	if !t.epochStart.IsZero() {
		if since := now.Sub(t.epochStart); since > 0 && base.counts != nil {
			covered = t.window + since
		} else if base.counts == nil {
			covered = since
		}
	}
	t.mu.Unlock()
	snap := t.hist.Snapshot().Sub(base)
	if errs < 0 {
		errs = 0
	}
	return snap, errs, covered
}
