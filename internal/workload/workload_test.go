package workload

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCharacterizationSetShape(t *testing.T) {
	set := CharacterizationSet()
	if len(set) != 25 {
		t.Fatalf("characterization set has %d programs, want 25", len(set))
	}
	counts := map[Suite]int{}
	for _, b := range set {
		counts[b.Suite]++
	}
	if counts[NPB] != 6 {
		t.Errorf("%d NPB programs, want 6", counts[NPB])
	}
	if counts[PARSEC] != 6 {
		t.Errorf("%d PARSEC programs, want 6", counts[PARSEC])
	}
	if counts[SPECInt]+counts[SPECFP] != 13 {
		t.Errorf("%d SPEC programs, want 13", counts[SPECInt]+counts[SPECFP])
	}
}

func TestGeneratorPoolShape(t *testing.T) {
	pool := GeneratorPool()
	if len(pool) != 35 {
		t.Fatalf("generator pool has %d programs, want 35 (29 SPEC + 6 NPB)", len(pool))
	}
	spec, npb := 0, 0
	for _, b := range pool {
		switch b.Suite {
		case SPECInt, SPECFP:
			spec++
			if b.Parallel {
				t.Errorf("%s: SPEC programs are single-threaded", b.Name)
			}
		case NPB:
			npb++
			if !b.Parallel {
				t.Errorf("%s: NPB programs are parallel", b.Name)
			}
		default:
			t.Errorf("%s: PARSEC must not be in the generator pool", b.Name)
		}
	}
	if spec != 29 || npb != 6 {
		t.Errorf("pool split %d SPEC / %d NPB, want 29/6", spec, npb)
	}
}

func TestSPECComponentCounts(t *testing.T) {
	ints, fps := 0, 0
	for _, b := range All() {
		switch b.Suite {
		case SPECInt:
			ints++
		case SPECFP:
			fps++
		}
	}
	if ints != 12 || fps != 17 {
		t.Errorf("SPEC CPU2006 split %d INT / %d FP, want 12/17", ints, fps)
	}
}

func TestByName(t *testing.T) {
	b, err := ByName("CG")
	if err != nil || b.Name != "CG" {
		t.Fatalf("ByName(CG) = %v, %v", b, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Error("unknown name must error")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName on unknown name should panic")
		}
	}()
	MustByName("nosuch")
}

func TestL3RateTargetReproduced(t *testing.T) {
	// The derivation must reproduce the specified L3C rate exactly in an
	// uncontended run at the reference clock.
	for _, b := range All() {
		got := b.L3RatePer1M(refGHz, 1, 1)
		if math.Abs(got-b.L3Per1MTarget)/b.L3Per1MTarget > 1e-9 {
			t.Errorf("%s: model L3 rate %.1f, target %.1f", b.Name, got, b.L3Per1MTarget)
		}
	}
}

func TestClassGroundTruth(t *testing.T) {
	memory := map[string]bool{
		"CG": true, "FT": true, "IS": true, "MG": true, "LU": true,
		"canneal": true, "dedup": true,
		"mcf": true, "milc": true, "libquantum": true, "lbm": true,
	}
	cpu := map[string]bool{
		"EP": true, "namd": true, "swaptions": true, "blackscholes": true,
		"povray": true, "hmmer": true, "sjeng": true, "gobmk": true,
		"h264ref": true, "perlbench": true, "bzip2": true, "gcc": true,
		"fluidanimate": true, "bodytrack": true,
	}
	for _, b := range CharacterizationSet() {
		if memory[b.Name] && !b.MemoryIntensive() {
			t.Errorf("%s must be memory-intensive (rate %.0f)", b.Name, b.L3Per1MTarget)
		}
		if cpu[b.Name] && b.MemoryIntensive() {
			t.Errorf("%s must be CPU-intensive (rate %.0f)", b.Name, b.L3Per1MTarget)
		}
	}
}

func TestPaperExtremes(t *testing.T) {
	// Fig. 8: namd and EP the most CPU-intensive; CG and FT the most
	// memory-intensive.
	all := SortByMemoryIntensity(CharacterizationSet())
	first2 := map[string]bool{all[0].Name: true, all[1].Name: true}
	if !first2["namd"] && !first2["EP"] {
		t.Errorf("most CPU-intensive are %s/%s, expected namd/EP leading", all[0].Name, all[1].Name)
	}
	last3 := map[string]bool{
		all[len(all)-1].Name: true, all[len(all)-2].Name: true, all[len(all)-3].Name: true,
	}
	if !last3["CG"] || !last3["lbm"] {
		t.Errorf("most memory-intensive tail misses CG/lbm: %v", last3)
	}
}

func TestCPIAtFrequencyScaling(t *testing.T) {
	// Memory stalls cost fewer cycles at lower frequency: effective CPI
	// must shrink as the clock slows.
	b := MustByName("milc")
	if !(b.CPIAt(1.5, 1, 1) < b.CPIAt(3.0, 1, 1)) {
		t.Error("milc CPI must shrink at lower clock (stalls are wall-time)")
	}
	// ...while a pure-CPU code's CPI barely moves.
	ep := MustByName("EP")
	rel := (ep.CPIAt(3.0, 1, 1) - ep.CPIAt(1.5, 1, 1)) / ep.CPIAt(3.0, 1, 1)
	if rel > 0.05 {
		t.Errorf("EP CPI varies %.1f%% with clock, want ~0", 100*rel)
	}
}

func TestMemFracRealized(t *testing.T) {
	// The stall share of CPI at the reference clock must equal the
	// specified memory fraction.
	for _, tc := range []struct {
		name string
		frac float64
	}{{"CG", 0.88}, {"milc", 0.84}, {"EP", 0.02}, {"namd", 0.03}, {"LU", 0.45}} {
		b := MustByName(tc.name)
		cpi := b.CPIAt(refGHz, 1, 1)
		stall := (cpi - b.CPIBase) / cpi
		if math.Abs(stall-tc.frac) > 1e-9 {
			t.Errorf("%s: stall share %.3f, want %.3f", tc.name, stall, tc.frac)
		}
	}
}

func TestSoloRuntimeFrequencySensitivity(t *testing.T) {
	// Fig. 11/12 mechanism: halving the clock roughly doubles a
	// CPU-intensive runtime but barely moves a memory-intensive one.
	ep := MustByName("EP")
	ratioEP := ep.SoloRuntime(1.5) / ep.SoloRuntime(3.0)
	if ratioEP < 1.9 {
		t.Errorf("EP slowdown at half clock = %.2fx, want ~2x", ratioEP)
	}
	cg := MustByName("CG")
	ratioCG := cg.SoloRuntime(1.5) / cg.SoloRuntime(3.0)
	if ratioCG > 1.25 {
		t.Errorf("CG slowdown at half clock = %.2fx, want <1.25x", ratioCG)
	}
}

func TestVminOffsetsNonPositive(t *testing.T) {
	// Offsets are margins below the class envelope.
	for _, b := range All() {
		if b.VminOffsetMV > 0 {
			t.Errorf("%s: VminOffsetMV %d > 0", b.Name, b.VminOffsetMV)
		}
		if b.VminOffsetMV < -10 {
			t.Errorf("%s: VminOffsetMV %d below the modelled -10mV floor", b.Name, b.VminOffsetMV)
		}
	}
}

func TestEnvelopeSetters(t *testing.T) {
	// The droop-heavy memory-intensive programs define the envelope
	// (offset 0).
	for _, name := range []string{"CG", "milc", "lbm", "libquantum", "mcf"} {
		if MustByName(name).VminOffsetMV != 0 {
			t.Errorf("%s must sit at the class envelope", name)
		}
	}
	if MustByName("namd").VminOffsetMV != -10 {
		t.Error("namd must carry the largest margin (-10mV)")
	}
}

func TestInstructionsPositiveAndRuntimesSane(t *testing.T) {
	for _, b := range All() {
		if b.Instructions <= 1e9 {
			t.Errorf("%s: implausibly small instruction count %g", b.Name, b.Instructions)
		}
		rt := b.SoloRuntime(3.0)
		if rt < 10 || rt > 200 {
			t.Errorf("%s: solo runtime %.1fs out of the catalog's range", b.Name, rt)
		}
	}
}

func TestSortByMemoryIntensityDoesNotMutate(t *testing.T) {
	set := CharacterizationSet()
	first := set[0].Name
	_ = SortByMemoryIntensity(set)
	if set[0].Name != first {
		t.Error("sorting must copy, not mutate")
	}
}

func TestCPIAtInflationProperty(t *testing.T) {
	bs := All()
	f := func(bi uint8, l2Raw, contRaw uint8) bool {
		b := bs[int(bi)%len(bs)]
		l2 := 1 + float64(l2Raw%100)/100
		cont := 1 + float64(contRaw%100)/10
		base := b.CPIAt(3.0, 1, 1)
		return b.CPIAt(3.0, l2, cont) >= base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDroopRatesTrackMemoryIntensity(t *testing.T) {
	// Droop event rates (used by Fig. 6) grow with memory intensity in
	// the catalog.
	if MustByName("lbm").DroopPer1M <= MustByName("namd").DroopPer1M {
		t.Error("lbm must emit more droop events than namd")
	}
}

func TestSuiteString(t *testing.T) {
	if NPB.String() != "NPB" || PARSEC.String() != "PARSEC" {
		t.Error("suite names")
	}
	if SPECInt.String() == SPECFP.String() {
		t.Error("SPEC components must render differently")
	}
}
