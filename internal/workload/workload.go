// Package workload provides analytic behaviour models of the benchmark
// programs used by the paper: the NAS Parallel Benchmarks (NPB v3.3.1),
// PARSEC v3.0, and SPEC CPU2006.
//
// The paper runs real binaries; this reproduction cannot, so each program
// is modelled by the small set of parameters that the paper's analysis
// actually depends on:
//
//   - how many core cycles of work it represents (instruction count and
//     core CPI),
//   - how often it reaches below the L2 into the L3/DRAM subsystem (the
//     L3C access rate that drives the paper's CPU- vs memory-intensive
//     classification, Fig. 9),
//   - how much each such access stalls the pipeline (which makes execution
//     time partially frequency-invariant, Figs. 8/11/12),
//   - how sensitive it is to sharing a PMD's L2 with a sibling thread
//     (which creates the clustered/spreaded energy split of Fig. 7), and
//   - small electrical idiosyncrasies (switching activity, per-workload
//     Vmin offset, droop event rate).
//
// Two benchmark groups are exposed: CharacterizationSet (the 25 programs of
// Figs. 3-12: 6 NPB, 6 PARSEC, 13 SPEC) and GeneratorPool (the 35 programs
// the workload generator draws from: all 29 SPEC CPU2006 plus 6 NPB,
// Sec. VI-B).
package workload

import (
	"errors"
	"fmt"
	"sort"
)

// Suite identifies the benchmark suite a program belongs to.
type Suite int

const (
	// NPB is the NAS Parallel Benchmark suite v3.3.1 (parallel).
	NPB Suite = iota
	// PARSEC is the PARSEC v3.0 suite (parallel).
	PARSEC
	// SPECInt is the SPEC CPU2006 integer component (single-threaded).
	SPECInt
	// SPECFP is the SPEC CPU2006 floating-point component (single-threaded).
	SPECFP
)

// String names the suite.
func (s Suite) String() string {
	switch s {
	case NPB:
		return "NPB"
	case PARSEC:
		return "PARSEC"
	case SPECInt:
		return "SPEC CPU2006 INT"
	case SPECFP:
		return "SPEC CPU2006 FP"
	default:
		return fmt.Sprintf("Suite(%d)", int(s))
	}
}

// refGHz is the reference clock at which the catalog's observable targets
// (L3C access rate, runtime) are specified: the X-Gene 3 maximum frequency.
const refGHz = 3.0

// Benchmark is the analytic model of one program.
//
// The execution-time model for one thread running I instructions on a core
// clocked at f GHz is
//
//	cycles = I*CPIBase + I*MemPerInstr*StallNs*f
//	T      = cycles/f = I*CPIBase/f + I*MemPerInstr*StallNs
//
// The second term is frequency-invariant: it is wall-clock time spent
// waiting on the L3/DRAM, which does not speed up with the core clock.
// MemPerInstr and StallNs are inflated at run time by L2-sharing and
// bandwidth-contention factors computed by the simulator.
type Benchmark struct {
	Name     string
	Suite    Suite
	Parallel bool // true: one process computes with N threads (NPB/PARSEC)

	// CPIBase is cycles/instruction with an ideal memory system.
	CPIBase float64
	// MemPerInstr is the L3C (beyond-L2) accesses per instruction in an
	// unshared-L2, uncontended run. Derived from L3Per1MTarget.
	MemPerInstr float64
	// StallNs is the average exposed pipeline stall per L3C access in
	// nanoseconds (post-MLP), uncontended.
	StallNs float64
	// L2ShareSensitivity in [0,1] scales how much MemPerInstr inflates
	// when the sibling core of the PMD is busy (shared 256KB L2).
	L2ShareSensitivity float64
	// SerialFrac is the Amdahl serial fraction for parallel programs.
	SerialFrac float64
	// Instructions is the total dynamic instruction count of the
	// reference input (per instance; parallel programs divide this work
	// across their threads).
	Instructions float64
	// Activity is the average switching-activity factor in (0,1] used by
	// the dynamic power model; CPU-intensive codes toggle more logic.
	Activity float64
	// VminOffsetMV is the program's safe-Vmin margin in millivolts below
	// the configuration's class envelope (always <= 0; the envelope is
	// the worst case over programs). Droop-heavy memory-intensive codes
	// sit at the envelope (0); the most CPU-intensive codes sit up to
	// 10 mV below it. The margin is amplified in 1-2-core runs and
	// damped as thread count grows (Fig. 3 vs Fig. 4).
	VminOffsetMV int
	// DroopPer1M is the benchmark's voltage-droop event rate per million
	// cycles when it keeps its allocation class's PMDs busy (Fig. 6).
	DroopPer1M float64

	// L3Per1MTarget is the catalog's specified L3C accesses per 1M cycles
	// at the reference clock (Fig. 9 observable); MemPerInstr is derived
	// from it at catalog construction.
	L3Per1MTarget float64
}

// def is the compact literal used to build the catalog. The two primary
// observables — the L3C access rate (l3Per1M) and the fraction of
// execution time spent stalled on memory at the reference clock (memFrac)
// — determine the internal MemPerInstr and StallNs parameters:
//
//	StallNs     = memFrac·1e6 / (l3Per1M·refGHz)
//	MemPerInstr = l3Per1M·cpi / ((1-memFrac)·1e6)
//
// so that the model reproduces both targets exactly in an uncontended run.
type def struct {
	name     string
	suite    Suite
	parallel bool
	cpi      float64
	l3Per1M  float64 // L3C accesses per 1M cycles at 3 GHz, uncontended
	memFrac  float64 // fraction of time stalled on memory at 3 GHz
	l2Sens   float64
	serial   float64
	runSecs  float64 // single-thread runtime at 3 GHz, uncontended
	activity float64
	vminOff  int
	droop1M  float64
}

// build derives the internal parameters from the observable targets.
func build(d def) *Benchmark {
	if d.memFrac < 0 || d.memFrac >= 1 {
		panic(fmt.Sprintf("workload: %s: memFrac %v out of [0,1)", d.name, d.memFrac))
	}
	if d.l3Per1M <= 0 {
		panic(fmt.Sprintf("workload: %s: L3 rate must be positive", d.name))
	}
	stallNs := d.memFrac * 1e6 / (d.l3Per1M * refGHz)
	m := d.l3Per1M * d.cpi / ((1 - d.memFrac) * 1e6)
	cpiEff := d.cpi + m*stallNs*refGHz
	instr := d.runSecs * refGHz * 1e9 / cpiEff
	return &Benchmark{
		Name:               d.name,
		Suite:              d.suite,
		Parallel:           d.parallel,
		CPIBase:            d.cpi,
		MemPerInstr:        m,
		StallNs:            stallNs,
		L2ShareSensitivity: d.l2Sens,
		SerialFrac:         d.serial,
		Instructions:       instr,
		Activity:           d.activity,
		VminOffsetMV:       d.vminOff,
		DroopPer1M:         d.droop1M,
		L3Per1MTarget:      d.l3Per1M,
	}
}

// MemoryIntensiveThreshold is the L3C accesses-per-1M-cycles level that
// separates memory-intensive from CPU-intensive programs (Sec. IV-B).
const MemoryIntensiveThreshold = 3000.0

// MemoryIntensive reports the catalog ground truth for the program's class:
// whether its uncontended L3C access rate exceeds the 3K/1M-cycles
// threshold. The online daemon must *discover* this through counters; this
// method exists for test oracles and figure labels.
func (b *Benchmark) MemoryIntensive() bool {
	return b.L3Per1MTarget >= MemoryIntensiveThreshold
}

// CPIAt returns the effective CPI at core frequency fGHz with the given
// multiplicative inflation factors on memory accesses (l2Infl) and on the
// per-access stall (contInfl); both are >= 1.
func (b *Benchmark) CPIAt(fGHz, l2Infl, contInfl float64) float64 {
	m := b.MemPerInstr * l2Infl
	return b.CPIBase + m*b.StallNs*contInfl*fGHz
}

// SoloRuntime returns the uncontended single-thread execution time in
// seconds at core frequency fGHz.
func (b *Benchmark) SoloRuntime(fGHz float64) float64 {
	cpi := b.CPIAt(fGHz, 1, 1)
	return b.Instructions * cpi / (fGHz * 1e9)
}

// L3RatePer1M returns the model's L3C accesses per million cycles at
// frequency fGHz with the given inflation factors. Because memory stalls
// are frequency-invariant in wall-clock terms, the per-cycle rate rises
// slightly as frequency drops.
func (b *Benchmark) L3RatePer1M(fGHz, l2Infl, contInfl float64) float64 {
	m := b.MemPerInstr * l2Infl
	return 1e6 * m / b.CPIAt(fGHz, l2Infl, contInfl)
}

// catalog holds every modelled program keyed by name.
var catalog = map[string]*Benchmark{}

// ordered preserves the declaration order for deterministic listings.
var ordered []string

func register(d def) {
	if _, dup := catalog[d.name]; dup {
		panic("workload: duplicate benchmark " + d.name)
	}
	catalog[d.name] = build(d)
	ordered = append(ordered, d.name)
}

func init() {
	// --- NPB (parallel). CG and FT are the paper's most memory-intensive
	// programs (Fig. 8); EP is embarrassingly parallel and CPU-bound.
	register(def{"CG", NPB, true, 0.95, 12000, 0.88, 0.85, 0.02, 55, 0.62, 0, 95})
	register(def{"EP", NPB, true, 0.70, 150, 0.02, 0.03, 0.01, 60, 0.95, -8, 28})
	register(def{"FT", NPB, true, 0.90, 9500, 0.85, 0.80, 0.03, 50, 0.66, -1, 90})
	register(def{"IS", NPB, true, 1.00, 7000, 0.78, 0.70, 0.04, 25, 0.60, -1, 80})
	register(def{"LU", NPB, true, 0.85, 3400, 0.45, 0.45, 0.05, 70, 0.78, -3, 60})
	register(def{"MG", NPB, true, 0.90, 5500, 0.68, 0.60, 0.04, 45, 0.70, -2, 72})

	// --- PARSEC (parallel).
	register(def{"swaptions", PARSEC, true, 0.72, 180, 0.03, 0.03, 0.02, 55, 0.92, -9, 30})
	register(def{"blackscholes", PARSEC, true, 0.75, 420, 0.05, 0.08, 0.02, 40, 0.90, -7, 34})
	register(def{"fluidanimate", PARSEC, true, 0.88, 2600, 0.35, 0.35, 0.06, 60, 0.80, -3, 55})
	register(def{"canneal", PARSEC, true, 1.05, 6500, 0.80, 0.65, 0.08, 50, 0.58, -1, 78})
	register(def{"bodytrack", PARSEC, true, 0.82, 2000, 0.28, 0.30, 0.05, 45, 0.82, -4, 48})
	register(def{"dedup", PARSEC, true, 0.95, 4200, 0.55, 0.55, 0.07, 40, 0.68, -2, 66})

	// --- SPEC CPU2006 (single-threaded; the paper's 13-program subset
	// for characterization spans the intensity spectrum: namd is the most
	// CPU-intensive, milc among the most memory-intensive, Fig. 8).
	register(def{"namd", SPECFP, false, 0.68, 200, 0.03, 0.04, 0, 65, 0.96, -10, 26})
	register(def{"povray", SPECFP, false, 0.72, 350, 0.05, 0.05, 0, 55, 0.93, -9, 30})
	register(def{"hmmer", SPECInt, false, 0.74, 600, 0.08, 0.08, 0, 50, 0.90, -8, 33})
	register(def{"sjeng", SPECInt, false, 0.92, 900, 0.12, 0.12, 0, 55, 0.85, -6, 38})
	register(def{"h264ref", SPECInt, false, 0.80, 1500, 0.16, 0.15, 0, 60, 0.86, -5, 42})
	register(def{"gobmk", SPECInt, false, 0.98, 1300, 0.17, 0.18, 0, 50, 0.82, -5, 40})
	register(def{"perlbench", SPECInt, false, 0.95, 2200, 0.25, 0.25, 0, 55, 0.78, -4, 50})
	register(def{"bzip2", SPECInt, false, 0.90, 2500, 0.28, 0.30, 0, 45, 0.76, -3, 52})
	register(def{"gcc", SPECInt, false, 1.05, 2800, 0.33, 0.35, 0, 50, 0.74, -3, 56})
	register(def{"mcf", SPECInt, false, 1.20, 9500, 0.82, 0.75, 0, 55, 0.55, 0, 88})
	register(def{"milc", SPECFP, false, 1.00, 11000, 0.84, 0.80, 0, 50, 0.58, 0, 92})
	register(def{"libquantum", SPECInt, false, 0.95, 13000, 0.86, 0.82, 0, 45, 0.56, 0, 96})
	register(def{"lbm", SPECFP, false, 0.92, 14000, 0.88, 0.88, 0, 50, 0.54, 0, 98})

	// --- Remaining SPEC CPU2006 programs (generator pool only).
	register(def{"gamess", SPECFP, false, 0.70, 240, 0.04, 0.04, 0, 60, 0.94, -9, 27})
	register(def{"gromacs", SPECFP, false, 0.76, 700, 0.10, 0.10, 0, 55, 0.90, -7, 34})
	register(def{"calculix", SPECFP, false, 0.80, 850, 0.12, 0.12, 0, 60, 0.88, -6, 36})
	register(def{"tonto", SPECFP, false, 0.84, 1100, 0.14, 0.14, 0, 55, 0.86, -5, 38})
	register(def{"dealII", SPECFP, false, 0.86, 1700, 0.20, 0.20, 0, 50, 0.84, -4, 44})
	register(def{"cactusADM", SPECFP, false, 0.95, 3300, 0.42, 0.40, 0, 60, 0.72, -2, 58})
	register(def{"zeusmp", SPECFP, false, 0.92, 3800, 0.45, 0.45, 0, 55, 0.72, -2, 60})
	register(def{"wrf", SPECFP, false, 0.94, 3500, 0.44, 0.42, 0, 65, 0.74, -2, 58})
	register(def{"sphinx3", SPECFP, false, 0.98, 4500, 0.50, 0.50, 0, 50, 0.68, -1, 64})
	register(def{"astar", SPECInt, false, 1.05, 3900, 0.46, 0.45, 0, 50, 0.70, -2, 60})
	register(def{"omnetpp", SPECInt, false, 1.10, 5200, 0.62, 0.60, 0, 45, 0.62, -1, 72})
	register(def{"xalancbmk", SPECInt, false, 1.08, 4800, 0.55, 0.55, 0, 45, 0.64, -1, 68})
	register(def{"soplex", SPECFP, false, 1.02, 5600, 0.60, 0.60, 0, 50, 0.62, -1, 74})
	register(def{"leslie3d", SPECFP, false, 0.96, 6200, 0.65, 0.65, 0, 55, 0.62, -1, 76})
	register(def{"bwaves", SPECFP, false, 0.94, 7800, 0.72, 0.72, 0, 60, 0.58, 0, 84})
	register(def{"GemsFDTD", SPECFP, false, 0.98, 8600, 0.75, 0.75, 0, 55, 0.56, 0, 86})
}

// ErrUnknownBenchmark is the sentinel behind every failed catalog lookup;
// the public facade re-exports it as avfs.ErrUnknownBenchmark and the
// HTTP service maps it to 404.
var ErrUnknownBenchmark = errors.New("workload: unknown benchmark")

// ByName returns the model of a program, or an error wrapping
// ErrUnknownBenchmark for unknown names.
func ByName(name string) (*Benchmark, error) {
	b, ok := catalog[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownBenchmark, name)
	}
	return b, nil
}

// MustByName is ByName for static names; it panics on unknown names.
func MustByName(name string) *Benchmark {
	b, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return b
}

// All returns every modelled program in declaration order.
func All() []*Benchmark {
	out := make([]*Benchmark, 0, len(ordered))
	for _, n := range ordered {
		out = append(out, catalog[n])
	}
	return out
}

// characterizationNames lists the paper's 25-benchmark study set
// (Sec. II-B): 6 NPB + 6 PARSEC parallel programs and 13 SPEC CPU2006
// single-threaded programs.
var characterizationNames = []string{
	"CG", "EP", "FT", "IS", "LU", "MG",
	"swaptions", "blackscholes", "fluidanimate", "canneal", "bodytrack", "dedup",
	"namd", "povray", "hmmer", "sjeng", "h264ref", "gobmk", "perlbench",
	"bzip2", "gcc", "mcf", "milc", "libquantum", "lbm",
}

// CharacterizationSet returns the paper's 25-benchmark set in its
// canonical order.
func CharacterizationSet() []*Benchmark {
	out := make([]*Benchmark, len(characterizationNames))
	for i, n := range characterizationNames {
		out[i] = catalog[n]
	}
	return out
}

// GeneratorPool returns the 35-program pool of the workload generator
// (Sec. VI-B): all 29 SPEC CPU2006 programs plus the 6 NPB programs.
func GeneratorPool() []*Benchmark {
	var out []*Benchmark
	for _, n := range ordered {
		b := catalog[n]
		if b.Suite == NPB || b.Suite == SPECInt || b.Suite == SPECFP {
			out = append(out, b)
		}
	}
	return out
}

// SortByMemoryIntensity returns a copy of bs ordered from the most
// CPU-intensive to the most memory-intensive (the ordering used on the
// x-axes of Figs. 7, 11 and 12).
func SortByMemoryIntensity(bs []*Benchmark) []*Benchmark {
	out := make([]*Benchmark, len(bs))
	copy(out, bs)
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].L3Per1MTarget < out[j].L3Per1MTarget
	})
	return out
}
