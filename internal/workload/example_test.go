package workload_test

import (
	"fmt"

	"avfs/internal/workload"
)

// The catalog models each program by the observables the paper's analysis
// depends on: L3C access rate and memory-stall share.
func ExampleByName() {
	cg, _ := workload.ByName("CG")
	fmt.Printf("%s (%v): %.0f L3C/1Mcyc, memory-intensive: %v\n",
		cg.Name, cg.Suite, cg.L3Per1MTarget, cg.MemoryIntensive())
	ep, _ := workload.ByName("EP")
	fmt.Printf("%s (%v): %.0f L3C/1Mcyc, memory-intensive: %v\n",
		ep.Name, ep.Suite, ep.L3Per1MTarget, ep.MemoryIntensive())
	// Output:
	// CG (NPB): 12000 L3C/1Mcyc, memory-intensive: true
	// EP (NPB): 150 L3C/1Mcyc, memory-intensive: false
}

// Memory stalls are wall-clock time, so memory-intensive runtimes barely
// depend on the core clock — the mechanism behind the paper's Figs. 11/12.
func ExampleBenchmark_SoloRuntime() {
	for _, name := range []string{"EP", "CG"} {
		b := workload.MustByName(name)
		slowdown := b.SoloRuntime(1.5) / b.SoloRuntime(3.0)
		fmt.Printf("%s at half clock: %.2fx slower\n", name, slowdown)
	}
	// Output:
	// EP at half clock: 1.98x slower
	// CG at half clock: 1.12x slower
}

// The study sets match the paper: 25 characterization programs and the
// 35-program generator pool.
func ExampleCharacterizationSet() {
	fmt.Println("characterization set:", len(workload.CharacterizationSet()))
	fmt.Println("generator pool:", len(workload.GeneratorPool()))
	// Output:
	// characterization set: 25
	// generator pool: 35
}
