// Package snapshot implements versioned, content-addressed storage for
// full session state — the (Machine, Daemon, Baseline) triple a fleet
// session is made of. A snapshot is the unit behind the control plane's
// fork and what-if primitives (ROADMAP item 1): capture once, branch N
// deterministic children from it.
//
// The store follows the internal/vmin/store envelope discipline: files are
// named by the sha256 of their content, written atomically (temp file +
// rename), wrapped in a {version, id, state} envelope, and every load
// failure — missing file, corruption, version skew, id mismatch — is a
// miss, never an error. Snapshots are immutable by construction: the id is
// the hash, so a corrupted or tampered file simply fails to resolve.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"avfs/internal/daemon"
	"avfs/internal/sched"
	"avfs/internal/sim"
)

// Version tags the serialization format. Restoring a snapshot written by
// a different format version is a miss (the state layout or the
// simulator's numeric trajectory may have changed), mirroring the
// characterization store's model-version discipline.
const Version = "snap-v1"

// SessionState is the complete serializable state of one fleet session:
// the machine and both controller stacks, plus the session-level knobs
// needed to rebuild an equivalent session around them.
type SessionState struct {
	// Model is the session's chip model name (see service parseModel).
	Model string `json:"model"`
	// Policy is the session's active Table IV policy name.
	Policy string `json:"policy"`

	Machine  *sim.MachineState   `json:"machine"`
	Daemon   *daemon.State       `json:"daemon"`
	Baseline sched.BaselineState `json:"baseline"`

	// PowerCap carries the session's power-cap governor, when one is
	// attached, so a capped session migrates bit-identically. Omitted
	// when nil, which keeps the content addresses of every pre-existing
	// snapshot unchanged (still snap-v1).
	PowerCap *sched.PowerCapState `json:"power_cap,omitempty"`
}

// Encode marshals a session state and derives its content address.
func Encode(st *SessionState) (id string, payload []byte, err error) {
	payload, err = json.Marshal(st)
	if err != nil {
		return "", nil, fmt.Errorf("snapshot: encode: %w", err)
	}
	return idOf(payload), payload, nil
}

// Decode unmarshals a canonical payload (the inverse of Encode). It is
// the ingestion path for migrations: the receiving node decodes the
// shipped state after verifying its content address with ID.
func Decode(payload []byte) (*SessionState, error) {
	st := new(SessionState)
	if err := json.Unmarshal(payload, st); err != nil {
		return nil, fmt.Errorf("snapshot: decode: %w", err)
	}
	return st, nil
}

// ID derives the content address of a canonical payload without
// decoding it, so an importer can verify a shipped snapshot end to end.
func ID(payload []byte) string { return idOf(payload) }

// idOf hashes the version tag and payload into the content address.
func idOf(payload []byte) string {
	h := sha256.New()
	h.Write([]byte(Version))
	h.Write([]byte{'\n'})
	h.Write(payload)
	return hex.EncodeToString(h.Sum(nil))
}
