package snapshot

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/sim"
	"avfs/internal/workload"
)

// sampleState builds a real mid-run session state so the round trips
// exercise the full nested payload, not a toy struct.
func sampleState(t *testing.T, seconds float64) *SessionState {
	t.Helper()
	m := sim.New(chip.XGene3Spec())
	d := daemon.New(m, daemon.DefaultConfig())
	d.Attach()
	if _, err := m.Submit(workload.MustByName("CG"), 8); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(workload.MustByName("lbm"), 1); err != nil {
		t.Fatal(err)
	}
	m.RunFor(seconds)
	ds, err := d.CaptureState()
	if err != nil {
		t.Fatal(err)
	}
	return &SessionState{Model: "xgene3", Policy: "optimal", Machine: m.CaptureState(), Daemon: ds}
}

func TestStoreRoundTrip(t *testing.T) {
	st := sampleState(t, 15)
	s := NewStore("")

	id, err := s.Put(st)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if len(id) != 64 || strings.ToLower(id) != id {
		t.Fatalf("id %q is not lowercase sha256 hex", id)
	}

	got, ok := s.Get(id)
	if !ok {
		t.Fatal("Get missed a just-put snapshot")
	}
	wantRaw, _ := json.Marshal(st)
	gotRaw, _ := json.Marshal(got)
	if string(wantRaw) != string(gotRaw) {
		t.Fatal("round-tripped state differs from the original")
	}

	// Same state → same address; the second put is a dedup no-op.
	id2, err := s.Put(st)
	if err != nil || id2 != id {
		t.Fatalf("re-Put = %q, %v; want %q", id2, err, id)
	}
	if _, _, puts := s.Stats(); puts != 1 {
		t.Errorf("puts = %d, want 1 (dedup)", puts)
	}

	// Different state → different address.
	id3, err := s.Put(sampleState(t, 25))
	if err != nil || id3 == id {
		t.Fatalf("distinct state mapped to the same id %q (err %v)", id3, err)
	}

	if _, ok := s.Get("0000"); ok {
		t.Error("Get resolved a bogus id")
	}
}

func TestStoreDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	st := sampleState(t, 10)

	s1 := NewStore(dir)
	id, err := s1.Put(st)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".json")); err != nil {
		t.Fatalf("snapshot not mirrored to disk: %v", err)
	}

	// A fresh store over the same directory resolves the id from disk.
	s2 := NewStore(dir)
	got, ok := s2.Get(id)
	if !ok {
		t.Fatal("fresh store missed the persisted snapshot")
	}
	if got.Model != st.Model || got.Policy != st.Policy ||
		got.Machine.Ticks != st.Machine.Ticks {
		t.Fatalf("persisted state differs: %+v", got)
	}
	// The load promoted it to the memory tier: a corrupted file no longer
	// matters for this store instance.
	if err := os.Remove(filepath.Join(dir, id+".json")); err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(id); !ok {
		t.Error("promoted snapshot lost after disk removal")
	}
}

// TestStoreLoadFailuresAreMisses: every way a disk file can be wrong is a
// plain miss — never an error, never a corrupted state handed back.
func TestStoreLoadFailuresAreMisses(t *testing.T) {
	dir := t.TempDir()
	st := sampleState(t, 10)
	id, err := NewStore(dir).Put(st)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, id+".json")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt := func(name string, mutate func([]byte) []byte) {
		t.Helper()
		if err := os.WriteFile(path, mutate(append([]byte(nil), pristine...)), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := NewStore(dir).Get(id); ok {
			t.Errorf("%s: corrupted file resolved as a hit", name)
		}
	}

	corrupt("truncated", func(b []byte) []byte { return b[:len(b)/2] })
	corrupt("not json", func(b []byte) []byte { return []byte("%!") })
	corrupt("flipped payload byte", func(b []byte) []byte {
		// Flip a byte inside the state payload: the envelope still parses
		// but the content hash no longer matches the id.
		i := len(b) / 2
		b[i] ^= 0x01
		return b
	})
	corrupt("version skew", func(b []byte) []byte {
		var f diskFile
		if err := json.Unmarshal(b, &f); err != nil {
			t.Fatal(err)
		}
		f.Version = "snap-v0"
		out, _ := json.Marshal(f)
		return out
	})
	corrupt("id mismatch", func(b []byte) []byte {
		var f diskFile
		if err := json.Unmarshal(b, &f); err != nil {
			t.Fatal(err)
		}
		f.ID = strings.Repeat("ab", 32)
		out, _ := json.Marshal(f)
		return out
	})

	// Restore the pristine bytes: the file resolves again, proving the
	// misses above came from the mutations and nothing else.
	if err := os.WriteFile(path, pristine, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := NewStore(dir).Get(id); !ok {
		t.Error("pristine file no longer resolves")
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s := NewStore("")
	id, err := s.Put(sampleState(t, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(id); !ok {
		t.Fatal("memory-only store missed its own snapshot")
	}
	if _, ok := NewStore("").Get(id); ok {
		t.Fatal("a different memory-only store resolved the id")
	}
}
