package snapshot

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// Store holds snapshots in memory and, when given a directory, mirrors
// them to disk so forks survive server restarts. All methods are safe for
// concurrent use.
type Store struct {
	dir string

	mu  sync.Mutex
	mem map[string][]byte

	hits   atomic.Int64
	misses atomic.Int64
	puts   atomic.Int64
}

// NewStore creates a store. dir may be empty for memory-only operation;
// a non-empty dir is created lazily on the first Put.
func NewStore(dir string) *Store {
	return &Store{dir: dir, mem: map[string][]byte{}}
}

// diskFile is the on-disk envelope. Version and ID are verified on load;
// any mismatch (or any decode failure) is treated as a miss.
type diskFile struct {
	Version string          `json:"version"`
	ID      string          `json:"id"`
	State   json.RawMessage `json:"state"`
}

// Put stores a session state and returns its content address. The disk
// write is best-effort: a failed mirror (read-only disk, full volume)
// degrades durability, not correctness, since the in-memory tier already
// holds the snapshot.
func (s *Store) Put(st *SessionState) (string, error) {
	id, payload, err := Encode(st)
	if err != nil {
		return "", err
	}
	s.mu.Lock()
	_, existed := s.mem[id]
	if !existed {
		s.mem[id] = payload
	}
	s.mu.Unlock()
	if !existed {
		s.puts.Add(1)
		s.saveDisk(id, payload)
	}
	return id, nil
}

// Get resolves a snapshot by id, checking the memory tier first and then
// the disk mirror. The returned state is a fresh copy; mutating it never
// affects the stored snapshot.
func (s *Store) Get(id string) (*SessionState, bool) {
	s.mu.Lock()
	payload, ok := s.mem[id]
	s.mu.Unlock()
	if !ok {
		payload, ok = s.loadDisk(id)
		if ok {
			s.mu.Lock()
			s.mem[id] = payload
			s.mu.Unlock()
		}
	}
	if !ok {
		s.misses.Add(1)
		return nil, false
	}
	var st SessionState
	if err := json.Unmarshal(payload, &st); err != nil {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	return &st, true
}

// Stats returns the store's hit/miss/put counters.
func (s *Store) Stats() (hits, misses, puts int64) {
	return s.hits.Load(), s.misses.Load(), s.puts.Load()
}

// path returns the file path for an id. The id is hex (the content hash),
// so it is already filesystem-safe.
func (s *Store) path(id string) string {
	return filepath.Join(s.dir, id+".json")
}

// loadDisk reads and verifies a snapshot file. Every failure mode —
// absent file, truncation, corruption, version skew, id mismatch — is a
// plain miss.
func (s *Store) loadDisk(id string) ([]byte, bool) {
	if s.dir == "" {
		return nil, false
	}
	raw, err := os.ReadFile(s.path(id))
	if err != nil {
		return nil, false
	}
	var f diskFile
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, false
	}
	if f.Version != Version || f.ID != id || idOf(f.State) != id {
		return nil, false
	}
	return []byte(f.State), true
}

// saveDisk mirrors a snapshot to disk atomically (temp file + rename) so
// a concurrent reader or a crash never observes a partial file. Errors
// are swallowed: persistence is an optimization here, not a guarantee.
func (s *Store) saveDisk(id string, payload []byte) {
	if s.dir == "" {
		return
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return
	}
	raw, err := json.Marshal(diskFile{Version: Version, ID: id, State: payload})
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(s.dir, "snapshot-*.tmp")
	if err != nil {
		return
	}
	if _, err := tmp.Write(raw); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), s.path(id)); err != nil {
		os.Remove(tmp.Name())
	}
}
