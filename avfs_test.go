package avfs

import (
	"testing"
)

// TestQuickstartFlow exercises the README's quickstart through the public
// facade: machine, daemon, submit, run, observe.
func TestQuickstartFlow(t *testing.T) {
	m := NewMachine(XGene3)
	d := NewDaemon(m, OptimalDaemonConfig())
	d.Attach()
	p, err := m.Submit(Benchmark("CG"), 8)
	if err != nil {
		t.Fatal(err)
	}
	m.RunFor(60)
	if p.State.String() == "pending" {
		t.Fatal("daemon must have placed the process")
	}
	if m.Meter.Energy() <= 0 {
		t.Error("energy must accumulate")
	}
	if len(m.Emergencies()) != 0 {
		t.Error("no emergencies expected")
	}
}

func TestSpecAccessors(t *testing.T) {
	if Spec(XGene2).Cores != 8 || Spec(XGene3).Cores != 32 {
		t.Error("chip specs wrong")
	}
	if len(Benchmarks()) != 41 {
		t.Errorf("catalog has %d programs, want 41 (35 pool + 6 PARSEC)", len(Benchmarks()))
	}
}

func TestFacadeAllocations(t *testing.T) {
	cl, err := ClusteredAllocation(XGene3, 4)
	if err != nil || len(cl) != 4 || cl[1] != 1 {
		t.Errorf("clustered allocation = %v, %v", cl, err)
	}
	sp, err := SpreadedAllocation(XGene3, 4)
	if err != nil || sp[1] != 2 {
		t.Errorf("spreaded allocation = %v, %v", sp, err)
	}
}

func TestFacadeVminSurface(t *testing.T) {
	spec := Spec(XGene3)
	if got := SafeVminEnvelope(spec, FullSpeed, 16); got != 830 {
		t.Errorf("envelope = %v, want 830 (Table II)", got)
	}
	if got := FreqClassOf(spec, 1500); got != HalfSpeed {
		t.Errorf("class of 1500MHz = %v", got)
	}
	if got := DroopClassOf(spec, 8); got != 2 {
		t.Errorf("droop class of 8 PMDs = %v, want 2", got)
	}
	fr := ReportedFrequencies(Spec(XGene2))
	if len(fr) != 3 {
		t.Errorf("X-Gene 2 reported frequencies = %v", fr)
	}
}

func TestFacadeCharacterizer(t *testing.T) {
	ch := &Characterizer{SafeTrials: 100, UnsafeTrials: 30}
	cores, _ := ClusteredAllocation(XGene3, 32)
	cz := ch.Characterize(&VminConfig{
		Spec:      Spec(XGene3),
		FreqClass: FullSpeed,
		Cores:     cores,
		Bench:     Benchmark("CG"),
	})
	if cz.SafeVmin != 830 {
		t.Errorf("CG 32T safe Vmin = %v, want 830 (Table II envelope setter)", cz.SafeVmin)
	}
	if cz.GuardbandMV() != 40 {
		t.Errorf("guardband = %v, want 40", cz.GuardbandMV())
	}
}

func TestFacadeWorkloadAndEvaluate(t *testing.T) {
	if testing.Short() {
		t.Skip("evaluation in -short mode")
	}
	wl := GenerateWorkload(XGene2, WorkloadConfig{Duration: 300}, 1)
	if wl.TotalProcesses() == 0 {
		t.Fatal("empty workload")
	}
	res, err := Evaluate(XGene2, wl, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	if res.Emergencies != 0 || res.EnergyJ <= 0 {
		t.Errorf("evaluation result: %+v", res)
	}
}

func TestBaselineFacade(t *testing.T) {
	m := NewMachine(XGene2)
	AttachBaseline(m)
	m.MustSubmit(Benchmark("gcc"), 1)
	if err := m.RunUntilIdle(3600); err != nil {
		t.Fatal(err)
	}
	if m.Chip.Voltage() != Spec(XGene2).NominalMV {
		t.Error("baseline must keep nominal voltage")
	}
}
