module avfs

go 1.22
