package avfs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNewMachineWithOptions(t *testing.T) {
	reg := NewTelemetryRegistry()
	m, err := NewMachineWithOptions(XGene3,
		WithTick(0.005),
		WithCoalescing(false),
		WithMigrationPenalty(0.001),
		WithVminDrift(10),
		WithEventLog(),
		WithMachineTelemetry(reg, nil),
	)
	if err != nil {
		t.Fatalf("NewMachineWithOptions: %v", err)
	}
	if m.Tick != 0.005 {
		t.Errorf("Tick = %v, want 0.005", m.Tick)
	}
	m.RunFor(1)
	if m.Ticks() != 200 {
		t.Errorf("1 s at 5 ms tick = %d ticks, want 200", m.Ticks())
	}
	if v, ok := reg.Value("avfs_sim_seconds"); !ok || v != 1 {
		t.Errorf("telemetry not wired: avfs_sim_seconds = %v, %v", v, ok)
	}
}

func TestMachineOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		opt  Option
	}{
		{"zero tick", WithTick(0)},
		{"negative tick", WithTick(-0.01)},
		{"negative migration penalty", WithMigrationPenalty(-1)},
		{"negative drift", WithVminDrift(-5)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewMachineWithOptions(XGene3, tc.opt); !errors.Is(err, ErrInvalidOption) {
				t.Errorf("err = %v, want ErrInvalidOption", err)
			}
		})
	}
}

func TestNewDaemonWithOptions(t *testing.T) {
	m, err := NewMachineWithOptions(XGene3)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewTelemetryRegistry()
	d, err := NewDaemonWithOptions(m,
		WithPollInterval(0.2),
		WithGuardMV(10),
		WithHysteresis(0.05),
		WithTransitionTicks(2),
		WithDaemonTelemetry(reg, nil),
	)
	if err != nil {
		t.Fatalf("NewDaemonWithOptions: %v", err)
	}
	if d.Cfg.PollInterval != 0.2 || d.Cfg.GuardMV != 10 || d.Cfg.TransitionTicks != 2 {
		t.Errorf("options not applied: %+v", d.Cfg)
	}
	d.Attach()
	if _, err := m.Submit(Benchmark("CG"), 8); err != nil {
		t.Fatal(err)
	}
	m.RunFor(10)
	if m.Chip.Voltage() >= Spec(XGene3).NominalMV {
		t.Errorf("daemon under options never undervolted: %v mV", m.Chip.Voltage())
	}
	if len(m.Emergencies()) != 0 {
		t.Error("no emergencies expected")
	}
}

func TestDaemonOptionValidation(t *testing.T) {
	m, _ := NewMachineWithOptions(XGene3)
	cases := []struct {
		name string
		opt  DaemonOption
	}{
		{"zero poll", WithPollInterval(0)},
		{"negative guard", WithGuardMV(-1)},
		{"hysteresis out of range", WithHysteresis(1)},
		{"negative transition ticks", WithTransitionTicks(-1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewDaemonWithOptions(m, tc.opt); !errors.Is(err, ErrInvalidOption) {
				t.Errorf("err = %v, want ErrInvalidOption", err)
			}
		})
	}
}

func TestRunForContextCancellation(t *testing.T) {
	m, err := NewMachineWithOptions(XGene3, WithCoalescing(false))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit(Benchmark("CG"), 8); err != nil {
		t.Fatal(err)
	}
	AttachBaseline(m)

	// An already-dead context aborts before any time passes.
	dead, cancel := context.WithCancel(context.Background())
	cancel()
	if err := m.RunForContext(dead, 100); !errors.Is(err, context.Canceled) {
		t.Fatalf("RunForContext(dead) = %v, want Canceled", err)
	}
	if m.Now() != 0 {
		t.Errorf("cancelled run advanced time to %v", m.Now())
	}

	// A deadline lands mid-run: the machine stops at a consistent commit
	// well short of the budget.
	ctx, cancel2 := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel2()
	err = m.RunForContext(ctx, 86400)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunForContext = %v, want DeadlineExceeded", err)
	}
	if m.Now() <= 0 || m.Now() >= 86400 {
		t.Errorf("interrupted run at %v, want within (0, 86400)", m.Now())
	}
	// The machine remains serviceable after an abort.
	if err := m.RunForContext(context.Background(), 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilIdleContext(t *testing.T) {
	m, err := NewMachineWithOptions(XGene3)
	if err != nil {
		t.Fatal(err)
	}
	AttachBaseline(m)
	if _, err := m.Submit(Benchmark("blackscholes"), 4); err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilIdleContext(context.Background(), 7200); err != nil {
		t.Fatalf("RunUntilIdleContext: %v", err)
	}
	if m.RunningCount()+m.PendingCount() != 0 {
		t.Error("machine not idle")
	}

	// Timeout with work still pending wraps ErrNotIdle.
	if _, err := m.Submit(Benchmark("CG"), 8); err != nil {
		t.Fatal(err)
	}
	if err := m.RunUntilIdleContext(context.Background(), 1); !errors.Is(err, ErrNotIdle) {
		t.Errorf("short budget = %v, want ErrNotIdle", err)
	}
}

func TestBenchmarkByName(t *testing.T) {
	b, err := BenchmarkByName("CG")
	if err != nil || b == nil || b.Name != "CG" {
		t.Fatalf("BenchmarkByName(CG) = %v, %v", b, err)
	}
	_, err = BenchmarkByName("no-such-benchmark")
	if !errors.Is(err, ErrUnknownBenchmark) {
		t.Fatalf("unknown name = %v, want ErrUnknownBenchmark", err)
	}
}

// TestServiceSentinelReexports pins the facade's control-plane sentinels:
// wrapping preserves identity through errors.Is.
func TestServiceSentinelReexports(t *testing.T) {
	for _, sentinel := range []error{ErrSessionNotFound, ErrBusy, ErrFleetFull, ErrDraining} {
		if sentinel == nil {
			t.Fatal("nil sentinel re-export")
		}
		wrapped := fmt.Errorf("op failed: %w", sentinel)
		if !errors.Is(wrapped, sentinel) {
			t.Errorf("errors.Is broken for %v", sentinel)
		}
	}
}
