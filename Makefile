# Convenience targets; `make check` is the full gate (vet + build +
# race-enabled tests + the telemetry-overhead benchmark + the simulator
# hot-path benchmark + the experiment-runner speedup benchmark + the
# characterization-store memoization benchmark + the control-plane
# throughput benchmark + the request-tracing overhead benchmark + the
# snapshot restore-and-replay benchmark + the batched-stepping speedup
# benchmark + the cluster scale-out benchmark + the closed-form
# surrogate gates, which record their JSON summaries in
# BENCH_telemetry.json, BENCH_sim.json, BENCH_experiments.json,
# BENCH_cache.json, BENCH_service.json, BENCH_trace.json,
# BENCH_snapshot.json, BENCH_batch.json, BENCH_cluster.json and
# BENCH_surrogate.json).

GO ?= go

.PHONY: all build test race vet check bench clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check:
	sh scripts/check.sh

bench:
	AVFS_BENCH_OUT=$(CURDIR)/BENCH_telemetry.json \
		$(GO) test ./internal/telemetry -run TestTelemetryOverheadBudget -count=1 -v
	AVFS_BENCH_SIM_OUT=$(CURDIR)/BENCH_sim.json \
		$(GO) test ./internal/sim -run TestSimSteadyStateBudget -count=1 -v
	AVFS_BENCH_EXPERIMENTS_OUT=$(CURDIR)/BENCH_experiments.json \
		$(GO) test ./internal/experiments -run TestFigure3ParallelBudget -count=1 -v
	AVFS_BENCH_CACHE_OUT=$(CURDIR)/BENCH_cache.json \
		$(GO) test ./internal/experiments -run TestCharacterizeCacheBudget -count=1 -v
	AVFS_BENCH_SERVICE_OUT=$(CURDIR)/BENCH_service.json \
		$(GO) test ./internal/service -run TestServiceThroughputBudget -count=1 -v
	AVFS_BENCH_TRACE_OUT=$(CURDIR)/BENCH_trace.json \
		$(GO) test ./internal/service -run TestTraceOverheadBudget -count=1 -v
	AVFS_BENCH_SNAPSHOT_OUT=$(CURDIR)/BENCH_snapshot.json \
		$(GO) test ./internal/sim -run TestSnapshotRestoreBudget -count=1 -v
	AVFS_BENCH_BATCH_OUT=$(CURDIR)/BENCH_batch.json \
		$(GO) test ./internal/sim -run TestBatchStepBudget -count=1 -v
	AVFS_BENCH_CLUSTER_OUT=$(CURDIR)/BENCH_cluster.json \
		AVFS_BENCH_SERVICE_JSON=$(CURDIR)/BENCH_service.json \
		$(GO) test ./internal/cluster -run TestClusterScaleBudget -count=1 -v
	AVFS_BENCH_SURROGATE_OUT=$(CURDIR)/BENCH_surrogate.json \
		$(GO) test ./internal/surrogate -run 'TestSurrogateQueryBudget|TestSurrogateAccuracyBudget' -count=1 -v

clean:
	$(GO) clean ./...
