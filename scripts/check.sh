#!/bin/sh
# Full repository check: vet, build, race-enabled tests, and the
# telemetry-overhead benchmark. The benchmark's JSON summary is written to
# BENCH_telemetry.json at the repository root (see docs/OBSERVABILITY.md).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> telemetry overhead benchmark"
AVFS_BENCH_OUT="$(pwd)/BENCH_telemetry.json" \
	go test ./internal/telemetry -run TestTelemetryOverheadBudget -count=1 -v

echo "==> BENCH_telemetry.json"
cat BENCH_telemetry.json

echo "OK"
