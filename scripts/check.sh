#!/bin/sh
# Full repository check: vet, build, race-enabled tests, the
# telemetry-overhead benchmark, the simulator hot-path benchmark, the
# experiment-runner speedup gate, the characterization-store memoization
# gate, the control-plane throughput gate, the request-tracing overhead
# gate, the snapshot restore-and-replay gate, the batched-stepping
# speedup gate, and the cluster scale-out gate (3-node router-proxied
# read throughput vs the single-node floor, plus drain-to-peer
# migration latency), and the closed-form surrogate gates (query
# latency/allocs plus surrogate-vs-simulator accuracy). The benchmarks'
# JSON summaries are written to BENCH_telemetry.json, BENCH_sim.json,
# BENCH_experiments.json, BENCH_cache.json, BENCH_service.json,
# BENCH_trace.json, BENCH_snapshot.json, BENCH_batch.json,
# BENCH_cluster.json and BENCH_surrogate.json at the repository root
# (see docs/OBSERVABILITY.md, docs/PERFORMANCE.md, EXPERIMENTS.md and
# docs/API.md).
set -eu

cd "$(dirname "$0")/.."

echo "==> go vet ./..."
go vet ./...

echo "==> go build ./..."
go build ./...

echo "==> go test -race ./..."
go test -race ./...

echo "==> telemetry overhead benchmark"
AVFS_BENCH_OUT="$(pwd)/BENCH_telemetry.json" \
	go test ./internal/telemetry -run TestTelemetryOverheadBudget -count=1 -v

echo "==> BENCH_telemetry.json"
cat BENCH_telemetry.json

echo "==> simulator hot-path benchmark (steady-state allocs + coalescing speedup)"
AVFS_BENCH_SIM_OUT="$(pwd)/BENCH_sim.json" \
	go test ./internal/sim -run TestSimSteadyStateBudget -count=1 -v

echo "==> BENCH_sim.json"
cat BENCH_sim.json

echo "==> experiment-runner speedup benchmark (serial vs parallel Figure 3)"
AVFS_BENCH_EXPERIMENTS_OUT="$(pwd)/BENCH_experiments.json" \
	go test ./internal/experiments -run TestFigure3ParallelBudget -count=1 -v

echo "==> BENCH_experiments.json"
cat BENCH_experiments.json

echo "==> characterization-store memoization benchmark (cold vs warm Figure 3)"
AVFS_BENCH_CACHE_OUT="$(pwd)/BENCH_cache.json" \
	go test ./internal/experiments -run TestCharacterizeCacheBudget -count=1 -v

echo "==> BENCH_cache.json"
cat BENCH_cache.json

echo "==> control-plane throughput benchmark (session read path over HTTP)"
AVFS_BENCH_SERVICE_OUT="$(pwd)/BENCH_service.json" \
	go test ./internal/service -run TestServiceThroughputBudget -count=1 -v

echo "==> BENCH_service.json"
cat BENCH_service.json

echo "==> request-tracing overhead benchmark (RunSync traced vs untraced)"
AVFS_BENCH_TRACE_OUT="$(pwd)/BENCH_trace.json" \
	go test ./internal/service -run TestTraceOverheadBudget -count=1 -v

echo "==> BENCH_trace.json"
cat BENCH_trace.json

echo "==> snapshot restore benchmark (cold re-run vs restore-and-replay)"
AVFS_BENCH_SNAPSHOT_OUT="$(pwd)/BENCH_snapshot.json" \
	go test ./internal/sim -run TestSnapshotRestoreBudget -count=1 -v

echo "==> BENCH_snapshot.json"
cat BENCH_snapshot.json

echo "==> batched-stepping benchmark (solo loop vs structure-of-arrays lockstep)"
AVFS_BENCH_BATCH_OUT="$(pwd)/BENCH_batch.json" \
	go test ./internal/sim -run TestBatchStepBudget -count=1 -v

echo "==> BENCH_batch.json"
cat BENCH_batch.json

# Runs after the service gate so BENCH_service.json carries the
# single-node floor the 2.5x scale target is derived from.
echo "==> cluster scale-out benchmark (3-node router reads + migration latency)"
AVFS_BENCH_CLUSTER_OUT="$(pwd)/BENCH_cluster.json" \
	AVFS_BENCH_SERVICE_JSON="$(pwd)/BENCH_service.json" \
	go test ./internal/cluster -run TestClusterScaleBudget -count=1 -v

echo "==> BENCH_cluster.json"
cat BENCH_cluster.json

echo "==> surrogate gates (microsecond query budget + accuracy vs simulator)"
AVFS_BENCH_SURROGATE_OUT="$(pwd)/BENCH_surrogate.json" \
	go test ./internal/surrogate -run 'TestSurrogateQueryBudget|TestSurrogateAccuracyBudget' -count=1 -v

echo "==> BENCH_surrogate.json"
cat BENCH_surrogate.json

echo "OK"
