// Package avfs is the public facade of the AVFS library: a full
// reproduction, on simulated X-Gene 2 / X-Gene 3 substrates, of the HPCA
// 2019 paper "Adaptive Voltage/Frequency Scaling and Core Allocation for
// Balanced Energy and Performance on Multicore CPUs" (Papadimitriou,
// Chatzidimitriou, Gizopoulos — University of Athens).
//
// The library has three layers:
//
//   - Substrates (chip, clock, power, droop, vmin, workload, sim, perfmon,
//     sysfs, sched): everything the paper's testbed provided in hardware.
//   - The contribution (daemon): the online monitoring daemon that
//     classifies processes by their L3C access rate, clusters
//     CPU-intensive threads, spreads memory-intensive threads at reduced
//     frequency, and programs the Table II safe Vmin with a fail-safe
//     raise-before-reconfigure protocol.
//   - Experiments: one entry point per paper table/figure (see DESIGN.md).
//
// This package re-exports the types downstream users need, so the whole
// system is usable through the single import "avfs".
//
// Quick start:
//
//	machine, err := avfs.NewMachineWithOptions(avfs.XGene3)
//	if err != nil { ... }
//	d, err := avfs.NewDaemonWithOptions(machine)
//	if err != nil { ... }
//	d.Attach()
//	bench, err := avfs.BenchmarkByName("CG")
//	if err != nil { ... } // errors.Is(err, avfs.ErrUnknownBenchmark)
//	p, _ := machine.Submit(bench, 8)
//	_ = p
//	_ = machine.RunForContext(ctx, 60) // simulated seconds
//	fmt.Println(machine.Meter.Energy(), "J")
//
// Construction is configured with functional options (options.go) and
// failures are typed sentinels (errors.go) matched with errors.Is. Long
// runs take a context — Machine.RunForContext and
// Machine.RunUntilIdleContext stop between tick batches when the context
// ends, which is how the fleet service (internal/service, cmd/avfs-server)
// propagates request deadlines and drain cancellation into simulations.
// The original zero-option constructors remain as thin deprecated
// wrappers.
package avfs

import (
	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/experiments"
	"avfs/internal/sched"
	"avfs/internal/sim"
	"avfs/internal/wlgen"
	"avfs/internal/workload"
)

// Model identifies a supported chip.
type Model = chip.Model

// Supported chip models.
const (
	XGene2 = chip.XGene2
	XGene3 = chip.XGene3
)

// Core electrical and topology types.
type (
	// Millivolts is a supply voltage level.
	Millivolts = chip.Millivolts
	// MHz is a clock frequency.
	MHz = chip.MHz
	// CoreID identifies one core.
	CoreID = chip.CoreID
	// PMDID identifies one core pair (Processor MoDule).
	PMDID = chip.PMDID
	// ChipSpec is the static description of a chip.
	ChipSpec = chip.Spec
)

// Machine is the simulated server (see internal/sim).
type Machine = sim.Machine

// Process is a running program instance on a Machine.
type Process = sim.Process

// Placement names the clustered/spreaded allocation strategies.
type Placement = sim.Placement

// Allocation strategies (Fig. 2 of the paper).
const (
	Clustered = sim.Clustered
	Spreaded  = sim.Spreaded
)

// Daemon is the paper's online monitoring daemon.
type Daemon = daemon.Daemon

// DaemonConfig tunes the daemon.
type DaemonConfig = daemon.Config

// Workload is a reproducible random server-workload schedule.
type Workload = wlgen.Workload

// WorkloadConfig tunes the workload generator.
type WorkloadConfig = wlgen.Config

// BenchmarkModel is the analytic model of one program.
type BenchmarkModel = workload.Benchmark

// Spec returns the chip specification for a model.
func Spec(m Model) *ChipSpec { return chip.SpecFor(m) }

// NewMachine creates an idle simulated server of the given model, at
// nominal voltage with every PMD at maximum frequency.
//
// Deprecated: use NewMachineWithOptions, which reports configuration
// errors instead of requiring post-construction setters.
func NewMachine(m Model) *Machine { return sim.New(chip.SpecFor(m)) }

// NewDaemon creates the online monitoring daemon for a machine. Call
// Attach on the result to start it. It panics on an invalid config.
//
// Deprecated: use NewDaemonWithOptions, which validates the configuration
// and returns an error instead of panicking.
func NewDaemon(m *Machine, cfg DaemonConfig) *Daemon { return daemon.New(m, cfg) }

// OptimalDaemonConfig returns the paper's "Optimal" configuration:
// placement, frequency and voltage adaptation.
func OptimalDaemonConfig() DaemonConfig { return daemon.DefaultConfig() }

// PlacementDaemonConfig returns the paper's "Placement" configuration:
// placement and frequency adaptation at nominal voltage.
func PlacementDaemonConfig() DaemonConfig { return daemon.PlacementOnlyConfig() }

// AttachBaseline wires the default Linux-like stack (load-balanced
// placement + ondemand governor at nominal voltage) onto a machine — the
// paper's Baseline configuration.
func AttachBaseline(m *Machine) { sched.NewBaseline(m) }

// Benchmark returns the model of a program by name (e.g. "CG", "milc");
// it panics on unknown names. Use Benchmarks() to enumerate.
//
// Deprecated: use BenchmarkByName, which returns ErrUnknownBenchmark
// instead of panicking.
func Benchmark(name string) *BenchmarkModel { return workload.MustByName(name) }

// BenchmarkByName returns the model of a program by name (e.g. "CG",
// "milc"). Unknown names report an error wrapping ErrUnknownBenchmark.
func BenchmarkByName(name string) (*BenchmarkModel, error) {
	return workload.ByName(name)
}

// Benchmarks returns every modelled program.
func Benchmarks() []*BenchmarkModel { return workload.All() }

// GenerateWorkload builds a reproducible random server workload for a
// chip (Sec. VI-B of the paper). The zero WorkloadConfig generates the
// paper's 1-hour shape.
func GenerateWorkload(m Model, cfg WorkloadConfig, seed int64) *Workload {
	return wlgen.Generate(chip.SpecFor(m), cfg, seed)
}

// SystemConfig selects one of the paper's four evaluated configurations.
type SystemConfig = experiments.SystemConfig

// The four evaluated system configurations (Tables III/IV).
const (
	Baseline       = experiments.Baseline
	SafeVminConfig = experiments.SafeVmin
	PlacementOnly  = experiments.Placement
	Optimal        = experiments.Optimal
)

// EvalResult is the outcome of replaying a workload under one
// configuration.
type EvalResult = experiments.EvalResult

// EvalSet is the four-configuration comparison (Table III/IV).
type EvalSet = experiments.EvalSet

// Evaluate replays a workload under one system configuration.
func Evaluate(m Model, wl *Workload, cfg SystemConfig) (EvalResult, error) {
	return experiments.Evaluate(chip.SpecFor(m), wl, cfg)
}

// EvaluateAll runs the full four-configuration comparison.
func EvaluateAll(m Model, wl *Workload) (*EvalSet, error) {
	return experiments.EvaluateAll(chip.SpecFor(m), wl)
}

// clusteredCores and spreadedCores adapt the sim package's allocation
// helpers for the facade.
func clusteredCores(spec *chip.Spec, n int) ([]chip.CoreID, error) {
	return sim.ClusteredCores(spec, n)
}

func spreadedCores(spec *chip.Spec, n int) ([]chip.CoreID, error) {
	return sim.SpreadedCores(spec, n)
}
