// Benchmarks that regenerate every table and figure of the paper's
// evaluation (DESIGN.md §3 maps each to its experiment). Custom metrics
// report the headline quantities next to the usual ns/op:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks use reduced characterization trial counts so a
// full -bench=. pass stays in the minutes range; cmd/* binaries run the
// same experiments at paper-fidelity settings.
package avfs

import (
	"io"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/experiments"
	"avfs/internal/sim"
	"avfs/internal/wlgen"
)

// benchTrials is the per-voltage-level run count used by characterization
// benchmarks (the paper uses 1000; the discovered safe points match).
const benchTrials = 120

func BenchmarkTableI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		experiments.TableI().Render(io.Discard)
	}
}

func BenchmarkFigure3_VminCharacterization(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure3(benchTrials)
		spread = 0
		for _, c := range r.Configs {
			if s := float64(c.SpreadMV()); s > spread {
				spread = s
			}
		}
	}
	b.ReportMetric(spread, "worst-multicore-spread-mV")
}

func BenchmarkFigure4_CoreVariation(b *testing.B) {
	var wl, core float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure4(benchTrials)
		wl = float64(r.WorkloadVariationMV())
		core = float64(r.CoreVariationMV())
	}
	b.ReportMetric(wl, "workload-variation-mV")
	b.ReportMetric(core, "core-variation-mV")
}

func BenchmarkFigure5_PFailCurves(b *testing.B) {
	var lines float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure5(60)
		lines = float64(len(r.Lines))
	}
	b.ReportMetric(lines, "pfail-curves")
}

func BenchmarkFigure6_DroopDetections(b *testing.B) {
	var deep float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure6(100_000_000)
		// Mean [55,65) rate of the 32T configuration.
		cfg := r.Windows[0].Configs[0]
		var s float64
		for _, v := range cfg.PerBench {
			s += v
		}
		deep = s / float64(len(cfg.PerBench))
	}
	b.ReportMetric(deep, "droops-55-65mV-per-1Mcyc")
}

func BenchmarkFigure7_ClusteredVsSpreaded(b *testing.B) {
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure7(chip.XGene2Spec())
		maxDiff = 0
		for _, e := range r.Entries {
			if e.DiffFrac > maxDiff {
				maxDiff = e.DiffFrac
			}
		}
	}
	b.ReportMetric(100*maxDiff, "max-spread-benefit-%")
}

func BenchmarkFigure8_ContentionRatios(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure8(chip.XGene3Spec())
		worst = 1
		for _, e := range r.Entries {
			if e.Ratio < worst {
				worst = e.Ratio
			}
		}
	}
	b.ReportMetric(worst, "worst-contention-ratio")
}

func BenchmarkFigure9_L3CRates(b *testing.B) {
	var memCount float64
	for i := 0; i < b.N; i++ {
		r := experiments.Figure9(chip.XGene3Spec())
		memCount = 0
		for _, e := range r.Entries {
			if e.MemoryIntensive {
				memCount++
			}
		}
	}
	b.ReportMetric(memCount, "memory-intensive-programs")
}

func BenchmarkFigure10_FactorMagnitudes(b *testing.B) {
	var division float64
	for i := 0; i < b.N; i++ {
		division = 100 * experiments.Figure10().ClockDivision
	}
	b.ReportMetric(division, "clock-division-%nominal")
}

func BenchmarkFigure11_EnergyGrid_XGene2(b *testing.B) {
	benchGrid(b, chip.XGene2Spec(), func(g experiments.GridResult) float64 {
		c, _ := g.Cell("CG", 8, 900)
		return c.EnergyJ
	}, "CG-8T-0.9GHz-J")
}

func BenchmarkFigure11_EnergyGrid_XGene3(b *testing.B) {
	benchGrid(b, chip.XGene3Spec(), func(g experiments.GridResult) float64 {
		c, _ := g.Cell("CG", 32, 1500)
		return c.EnergyJ
	}, "CG-32T-1.5GHz-J")
}

func BenchmarkFigure12_ED2PGrid_XGene3(b *testing.B) {
	benchGrid(b, chip.XGene3Spec(), func(g experiments.GridResult) float64 {
		hi, _ := g.Cell("namd", 32, 3000)
		lo, _ := g.Cell("namd", 32, 1500)
		return lo.ED2P / hi.ED2P
	}, "namd-ED2P-half-vs-full")
}

func benchGrid(b *testing.B, spec *chip.Spec, metric func(experiments.GridResult) float64, name string) {
	b.Helper()
	var v float64
	for i := 0; i < b.N; i++ {
		v = metric(experiments.EnergyGrid(spec, sim.Clustered))
	}
	b.ReportMetric(v, name)
}

func BenchmarkTableII(b *testing.B) {
	var rows float64
	for i := 0; i < b.N; i++ {
		rows = float64(len(experiments.TableII().Rows))
	}
	b.ReportMetric(rows, "rows")
}

// benchEvaluate runs the four-configuration evaluation over a reduced
// (15-minute) workload and reports the paper's headline numbers.
func benchEvaluate(b *testing.B, spec *chip.Spec) {
	b.Helper()
	wl := wlgen.Generate(spec, wlgen.Config{Duration: 900}, 42)
	var set *experiments.EvalSet
	for i := 0; i < b.N; i++ {
		var err error
		set, err = experiments.EvaluateAll(spec, wl)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*set.EnergySavings(experiments.SafeVmin), "safevmin-savings-%")
	b.ReportMetric(100*set.EnergySavings(experiments.Placement), "placement-savings-%")
	b.ReportMetric(100*set.EnergySavings(experiments.Optimal), "optimal-savings-%")
	b.ReportMetric(100*set.TimePenalty(experiments.Optimal), "time-penalty-%")
	b.ReportMetric(float64(set.Results[experiments.Optimal].Emergencies), "emergencies")
}

func BenchmarkTableIII_Evaluation_XGene2(b *testing.B) { benchEvaluate(b, chip.XGene2Spec()) }
func BenchmarkTableIV_Evaluation_XGene3(b *testing.B)  { benchEvaluate(b, chip.XGene3Spec()) }

// BenchmarkFigure14_PowerTimeline exercises the trace path of Fig. 14: one
// Optimal run with 1-second power sampling.
func BenchmarkFigure14_PowerTimeline(b *testing.B) {
	spec := chip.XGene3Spec()
	wl := wlgen.Generate(spec, wlgen.Config{Duration: 600}, 42)
	var mean float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Evaluate(spec, wl, experiments.Optimal)
		if err != nil {
			b.Fatal(err)
		}
		mean = r.Power.Mean()
	}
	b.ReportMetric(mean, "mean-power-W")
}

// BenchmarkFigure15_LoadTimeline exercises the load/process-count traces
// of Fig. 15 including the 1-minute moving average.
func BenchmarkFigure15_LoadTimeline(b *testing.B) {
	spec := chip.XGene3Spec()
	wl := wlgen.Generate(spec, wlgen.Config{Duration: 600}, 42)
	var peak float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Evaluate(spec, wl, experiments.Optimal)
		if err != nil {
			b.Fatal(err)
		}
		peak = r.Load.MovingAvg(60).Max()
	}
	b.ReportMetric(peak, "peak-1min-load")
}

// --- Ablation and extension studies (DESIGN.md §3, beyond the paper) ----

func benchAblation(b *testing.B, run func() (experiments.AblationResult, error), metric func(experiments.AblationResult) (float64, string)) {
	b.Helper()
	var r experiments.AblationResult
	for i := 0; i < b.N; i++ {
		var err error
		r, err = run()
		if err != nil {
			b.Fatal(err)
		}
	}
	v, name := metric(r)
	b.ReportMetric(v, name)
}

func BenchmarkAblation_Threshold(b *testing.B) {
	benchAblation(b, func() (experiments.AblationResult, error) {
		return experiments.AblateThreshold(chip.XGene2Spec(), 600, 42)
	}, func(r experiments.AblationResult) (float64, string) {
		return 100 * r.Points[2].EnergySavings, "3K-threshold-savings-%"
	})
}

func BenchmarkAblation_Guard(b *testing.B) {
	benchAblation(b, func() (experiments.AblationResult, error) {
		return experiments.AblateGuard(chip.XGene3Spec(), 600, 42)
	}, func(r experiments.AblationResult) (float64, string) {
		return float64(r.Points[len(r.Points)-1].Emergencies), "emergencies-at-guard--25mV"
	})
}

func BenchmarkAblation_Protocol(b *testing.B) {
	benchAblation(b, func() (experiments.AblationResult, error) {
		return experiments.AblateProtocol(chip.XGene3Spec(), 600, 42)
	}, func(r experiments.AblationResult) (float64, string) {
		return float64(r.Points[1].Emergencies), "emergencies-inverted-order"
	})
}

func BenchmarkExtension_Relaxed(b *testing.B) {
	benchAblation(b, func() (experiments.AblationResult, error) {
		return experiments.AblateRelaxed(chip.XGene3Spec(), 600, 42)
	}, func(r experiments.AblationResult) (float64, string) {
		return 100 * r.Points[len(r.Points)-1].EnergySavings, "half-speed-cpu-savings-%"
	})
}

func BenchmarkExtension_Aging(b *testing.B) {
	benchAblation(b, func() (experiments.AblationResult, error) {
		return experiments.AblateAging(chip.XGene3Spec(), 600, 42)
	}, func(r experiments.AblationResult) (float64, string) {
		return 100 * r.Points[len(r.Points)-1].EnergySavings, "7y-age-aware-savings-%"
	})
}

func BenchmarkRobustness_Seeds(b *testing.B) {
	var st experiments.SeedStudy
	for i := 0; i < b.N; i++ {
		var err error
		st, err = experiments.RunSeedStudy(chip.XGene3Spec(), 480, []int64{1, 2, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*st.MeanSavings(), "mean-savings-%")
	b.ReportMetric(100*st.StddevSavings(), "stddev-savings-%")
}
