package avfs

import (
	"avfs/internal/chip"
	"avfs/internal/clock"
	"avfs/internal/droop"
	"avfs/internal/vmin"
)

// FreqClass partitions the frequency range into the electrically distinct
// regions of the paper's clock tree (skipping vs division).
type FreqClass = clock.FreqClass

// The frequency classes.
const (
	// FullSpeed covers every setting above half of the maximum clock.
	FullSpeed = clock.FullSpeed
	// HalfSpeed is the true clock-division point and below.
	HalfSpeed = clock.HalfSpeed
	// DividedLow is X-Gene 2's deep-division region (≤0.9 GHz).
	DividedLow = clock.DividedLow
)

// FreqClassOf returns the frequency class of a setting on a chip.
func FreqClassOf(spec *ChipSpec, f MHz) FreqClass { return clock.ClassOf(spec, f) }

// ReportedFrequencies returns the paper's per-class representative
// frequencies for a chip (2.4/1.2/0.9 GHz or 3/1.5 GHz).
func ReportedFrequencies(spec *ChipSpec) []MHz { return clock.ReportedFrequencies(spec) }

// VminConfig describes one voltage-characterization configuration.
type VminConfig = vmin.Config

// Characterizer runs safe-Vmin searches and unsafe-region sweeps using the
// paper's methodology (1000-run safe criterion, 60-run sweeps).
type Characterizer = vmin.Characterizer

// Characterization is the outcome of one configuration's voltage sweep.
type Characterization = vmin.Characterization

// PFailPoint is one point of a cumulative fail-probability curve, as
// returned by Characterization.CumulativePFail (the Fig. 5 y-axis).
type PFailPoint = vmin.PFailPoint

// FaultTally counts faults by kind with fixed storage (indexed by
// FaultKind; no map allocation on the sweep hot path).
type FaultTally = vmin.FaultTally

// FaultKind classifies abnormal outcomes in the unsafe region.
type FaultKind = vmin.FaultKind

// Fault kinds observed below the safe Vmin.
const (
	FaultNone    = vmin.None
	FaultSDC     = vmin.SDC
	FaultTimeout = vmin.Timeout
	FaultHang    = vmin.Hang
	FaultCrash   = vmin.Crash
)

// SafeVminEnvelope returns the Table II class envelope: the safe Vmin of a
// (frequency class, utilized-PMD count) configuration, worst-case over
// workloads and cores. This is the value the daemon programs.
func SafeVminEnvelope(spec *ChipSpec, fc FreqClass, utilizedPMDs int) Millivolts {
	return vmin.ClassEnvelope(spec, fc, utilizedPMDs)
}

// DroopClassOf returns the droop magnitude class (Table II's left column)
// implied by a utilized-PMD count.
func DroopClassOf(spec *ChipSpec, utilizedPMDs int) droop.MagnitudeClass {
	return droop.ClassOfPMDs(spec, utilizedPMDs)
}

// ClusteredAllocation returns the canonical clustered core set for n
// threads (both cores of each PMD before the next PMD).
func ClusteredAllocation(m Model, n int) ([]CoreID, error) {
	return clusteredCores(chip.SpecFor(m), n)
}

// SpreadedAllocation returns the canonical spreaded core set for n threads
// (one core per PMD while PMDs remain).
func SpreadedAllocation(m Model, n int) ([]CoreID, error) {
	return spreadedCores(chip.SpecFor(m), n)
}
