package avfs

import (
	"errors"

	"avfs/internal/service"
	"avfs/internal/sim"
	"avfs/internal/vmin"
	"avfs/internal/workload"
)

// Typed sentinel errors of the public surface. Internal packages wrap
// these with %w at the failure site, so callers branch with errors.Is/As
// instead of string matching; the HTTP service layer (internal/service)
// maps them — together with its own session sentinels — onto status codes.
var (
	// ErrUnknownBenchmark reports a failed catalog lookup (BenchmarkByName,
	// the service's submit endpoint).
	ErrUnknownBenchmark = workload.ErrUnknownBenchmark

	// ErrNoSafeVmin reports a characterization whose sweep found no clean
	// undervolt point — nominal voltage itself failed the safe-run
	// criterion (Characterization.SafeVminOrErr, Fig5Line.SafeVminOrErr).
	ErrNoSafeVmin = vmin.ErrNoSafeVmin

	// ErrInvalidProcess rejects a malformed Submit: no threads, or
	// multiple threads of a single-threaded program.
	ErrInvalidProcess = sim.ErrInvalidProcess

	// ErrInvalidPlacement rejects a Place/Migrate/Reassign whose core
	// assignment is malformed, conflicting, or in the wrong process state.
	ErrInvalidPlacement = sim.ErrInvalidPlacement

	// ErrNotIdle is RunUntilIdle's timeout: the budget elapsed with work
	// still running or pending (usually an unplaceable process).
	ErrNotIdle = sim.ErrNotIdle

	// ErrInvalidOption rejects a NewMachineWithOptions /
	// NewDaemonWithOptions call with an out-of-range option value.
	ErrInvalidOption = errors.New("avfs: invalid option")

	// ErrSessionNotFound reports an unknown (or reaped) control-plane
	// session ID; the server answers it with 404 session_not_found.
	ErrSessionNotFound = service.ErrSessionNotFound

	// ErrBusy is the fleet's backpressure signal: the run admission queue
	// is saturated. The server answers 429 with a Retry-After header.
	ErrBusy = service.ErrBusy

	// ErrFleetFull rejects session creation beyond the configured
	// live-session cap (429 fleet_full on the wire).
	ErrFleetFull = service.ErrFleetFull

	// ErrDraining rejects new sessions and runs while the fleet shuts
	// down gracefully (503 draining on the wire).
	ErrDraining = service.ErrDraining
)
