package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/telemetry"
	texport "avfs/internal/telemetry/export"
)

// scriptedSession runs the canonical interactive script against a fully
// wired session with a JSONL trace attached, returning the decoded trace
// and the session (for registry assertions).
func scriptedSession(t *testing.T) (*session, []telemetry.Decision) {
	t.Helper()
	var out bytes.Buffer
	s := newSession(chip.XGene3Spec(), daemon.DefaultConfig(), &out)
	var trace bytes.Buffer
	s.streamJSONL(&trace)
	for _, line := range []string{
		"submit CG 8",
		"submit lbm 1",
		"run 30",
		"submit namd 1",
		"submit EP 4",
		"run 30",
		"submit milc 1",
		"run 60",
	} {
		if s.exec(line) {
			t.Fatalf("command %q ended the session", line)
		}
	}
	s.close()
	ds, err := texport.ReadJSONL(bytes.NewReader(trace.Bytes()))
	if err != nil {
		t.Fatalf("trace does not decode: %v", err)
	}
	if len(ds) == 0 {
		t.Fatal("scripted session produced an empty decision trace")
	}
	return s, ds
}

// TestFailSafeOrderInTrace is the issue's acceptance check: in the JSONL
// decision trace of a scripted session, every voltage-lowering settle is
// preceded by a guard-raise event of the same reconfiguration.
func TestFailSafeOrderInTrace(t *testing.T) {
	_, ds := scriptedSession(t)
	raised := map[int64]int{} // reconfig id -> index of guard-raise
	lowerings := 0
	for i, d := range ds {
		switch d.Kind {
		case telemetry.DecGuardRaise:
			if d.Reconfig == 0 {
				t.Errorf("event %d: guard-raise without a reconfiguration id", i)
			}
			if _, dup := raised[d.Reconfig]; dup {
				t.Errorf("event %d: duplicate guard-raise for reconfiguration %d", i, d.Reconfig)
			}
			raised[d.Reconfig] = i
			if d.ToMV < d.FromMV {
				t.Errorf("event %d: guard phase lowered the voltage (%d -> %d mV)", i, d.FromMV, d.ToMV)
			}
		case telemetry.DecSettle:
			j, ok := raised[d.Reconfig]
			if !ok || j >= i {
				t.Errorf("event %d: settle of reconfiguration %d has no preceding guard-raise", i, d.Reconfig)
			}
			if d.ToMV < d.FromMV {
				lowerings++
			}
			if d.ToMV < d.RequiredMV {
				t.Errorf("event %d: settle below the required Vmin (%d < %d mV)", i, d.ToMV, d.RequiredMV)
			}
		}
	}
	// The check must not pass vacuously: the mixed CG/lbm workload drives
	// memory-intensive spreading at reduced frequency, which lowers Vmin.
	if lowerings == 0 {
		t.Error("scripted session never lowered the voltage; acceptance check is vacuous")
	}
}

// TestTraceRecordsClassificationInputs checks the decision-trace schema:
// classifications carry their inputs (L3C rate, class, rule).
func TestTraceRecordsClassificationInputs(t *testing.T) {
	_, ds := scriptedSession(t)
	classified := 0
	for i, d := range ds {
		if d.Kind != telemetry.DecClassify {
			continue
		}
		classified++
		if d.Rule == "" {
			t.Errorf("event %d: classification without the rule that fired", i)
		}
		if d.Class == "" {
			t.Errorf("event %d: classification without a class", i)
		}
		if d.Proc < 0 {
			t.Errorf("event %d: classification without a process id", i)
		}
	}
	if classified == 0 {
		t.Error("trace has no classification decisions")
	}
}

// TestTraceToggle verifies `trace off` stops the stream and `trace on`
// resumes it.
func TestTraceToggle(t *testing.T) {
	var out bytes.Buffer
	s := newSession(chip.XGene3Spec(), daemon.DefaultConfig(), &out)
	var trace bytes.Buffer
	s.streamJSONL(&trace)
	s.exec("trace off")
	s.exec("submit CG 8")
	s.exec("run 30")
	s.close()
	if ds, _ := texport.ReadJSONL(bytes.NewReader(trace.Bytes())); len(ds) != 0 {
		t.Errorf("trace off still streamed %d decisions", len(ds))
	}
	s.exec("trace on")
	s.exec("submit lbm 1")
	s.exec("run 30")
	s.close()
	if ds, _ := texport.ReadJSONL(bytes.NewReader(trace.Bytes())); len(ds) == 0 {
		t.Error("trace on did not resume the stream")
	}
}

// TestDumpParsesAsPrometheus drives `dump <file>` and feeds the result to
// the format check.
func TestDumpParsesAsPrometheus(t *testing.T) {
	s, _ := scriptedSession(t)
	path := filepath.Join(t.TempDir(), "metrics.prom")
	s.exec("dump " + path)
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("dump did not create the file: %v", err)
	}
	defer f.Close()
	ms, err := texport.ParsePrometheus(f)
	if err != nil {
		t.Fatalf("dump does not parse as Prometheus text format: %v", err)
	}
	for _, name := range []string{
		telemetry.MetricVoltageMV,
		telemetry.MetricEnergyJoules,
		daemon.MetricPolls,
		daemon.MetricResidency,
	} {
		if _, ok := texport.Find(ms, name, nil); !ok {
			t.Errorf("dump missing metric %s", name)
		}
	}
}

// TestStatusAgreesWithRegistry re-runs `status` and checks the numbers it
// prints are the registry's numbers (the refactor's whole point).
func TestStatusAgreesWithRegistry(t *testing.T) {
	var out bytes.Buffer
	s := newSession(chip.XGene3Spec(), daemon.DefaultConfig(), &out)
	s.exec("submit CG 8")
	s.exec("run 30")
	out.Reset()
	s.exec("status")
	text := out.String()
	v, _ := s.reg.Value(telemetry.MetricVoltageMV)
	if want := "V=" + itoa(int(v)) + "mV"; !strings.Contains(text, want) {
		t.Errorf("status output lacks %q:\n%s", want, text)
	}
	polls, _ := s.reg.Value(daemon.MetricPolls)
	if want := "polls " + itoa(int(polls)); !strings.Contains(text, want) {
		t.Errorf("status output lacks %q:\n%s", want, text)
	}
	out.Reset()
	s.exec("stats")
	if !strings.Contains(out.String(), telemetry.MetricVoltageMV) {
		t.Errorf("stats output lacks %s:\n%s", telemetry.MetricVoltageMV, out.String())
	}
}

// TestSysfsExposesTelemetry reads a metric through the virtual sysfs and
// checks read-only enforcement.
func TestSysfsExposesTelemetry(t *testing.T) {
	s, _ := scriptedSession(t)
	var node string
	for _, p := range s.fs.List() {
		if strings.Contains(p, telemetry.MetricVoltageMV) {
			node = p
			break
		}
	}
	if node == "" {
		t.Fatalf("no sysfs node for %s in %v", telemetry.MetricVoltageMV, s.fs.List())
	}
	v, err := s.fs.Read(node)
	if err != nil {
		t.Fatalf("read %s: %v", node, err)
	}
	want, _ := s.reg.Value(telemetry.MetricVoltageMV)
	if got, err := strconv.ParseFloat(strings.TrimSpace(v), 64); err != nil || got != want {
		t.Errorf("telemetry node %s = %q (err %v), registry says %v", node, v, err, want)
	}
	if err := s.fs.Write(node, "0"); err == nil {
		t.Errorf("telemetry node %s must be read-only", node)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}
