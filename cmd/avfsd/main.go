// Command avfsd runs the online monitoring daemon interactively against a
// simulated X-Gene server — the closest analogue of deploying the paper's
// daemon on real hardware. Commands are read from stdin:
//
//	submit <benchmark> <threads>   queue a program (e.g. "submit CG 8")
//	run <seconds>                  advance simulated time
//	status                         machine, daemon and energy state
//	stats                          every telemetry metric, including histograms
//	trace on|off                   toggle the decision trace stream
//	dump <file>                    write a Prometheus text-format snapshot
//	log [n]                        last n machine events (default 20)
//	sysfs [path]                   read one sysfs node, or list all
//	bench                          list available benchmark names
//	quit                           exit
//
// Usage:
//
//	avfsd [-chip xgene2|xgene3] [-mode optimal|placement|monitor]
//	      [-telemetry <file>]
//
// With -telemetry, every daemon decision (classification, placement, and
// each phase of the fail-safe voltage protocol) streams to the file as
// JSONL — see docs/OBSERVABILITY.md for the schema.
//
// Example session:
//
//	$ avfsd -chip xgene3 -telemetry trace.jsonl
//	> submit CG 8
//	> submit namd 1
//	> run 30
//	> status
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"avfs/internal/chip"
	"avfs/internal/daemon"
)

func main() {
	chipFlag := flag.String("chip", "xgene3", "chip: xgene2 or xgene3")
	mode := flag.String("mode", "optimal", "daemon mode: optimal, placement or monitor")
	telPath := flag.String("telemetry", "", "stream the JSONL decision trace to this file")
	flag.Parse()

	var spec *chip.Spec
	switch *chipFlag {
	case "xgene2":
		spec = chip.XGene2Spec()
	case "xgene3":
		spec = chip.XGene3Spec()
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipFlag)
		os.Exit(2)
	}

	var cfg daemon.Config
	switch *mode {
	case "optimal":
		cfg = daemon.DefaultConfig()
	case "placement":
		cfg = daemon.PlacementOnlyConfig()
	case "monitor":
		cfg = daemon.DefaultConfig()
		cfg.AdaptPlacement = false
		cfg.AdaptVoltage = false
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	s := newSession(spec, cfg, os.Stdout)
	if *telPath != "" {
		f, err := os.Create(*telPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		s.streamJSONL(f)
	}
	defer s.close()

	fmt.Printf("avfsd: %s, %d cores (%d PMDs), nominal %v, daemon mode %s\n",
		spec.Name, spec.Cores, spec.PMDs(), spec.NominalMV, *mode)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			return
		}
		if s.exec(sc.Text()) {
			return
		}
	}
}
