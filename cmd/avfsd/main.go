// Command avfsd runs the online monitoring daemon interactively against a
// simulated X-Gene server — the closest analogue of deploying the paper's
// daemon on real hardware. Commands are read from stdin:
//
//	submit <benchmark> <threads>   queue a program (e.g. "submit CG 8")
//	run <seconds>                  advance simulated time
//	status                         machine, daemon and energy state
//	log [n]                        last n machine events (default 20)
//	sysfs [path]                   read one sysfs node, or list all
//	bench                          list available benchmark names
//	quit                           exit
//
// Usage:
//
//	avfsd [-chip xgene2|xgene3] [-mode optimal|placement|monitor]
//
// Example session:
//
//	$ avfsd -chip xgene3
//	> submit CG 8
//	> submit namd 1
//	> run 30
//	> status
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/sim"
	"avfs/internal/slimpro"
	"avfs/internal/sysfs"
	"avfs/internal/workload"
)

func main() {
	chipFlag := flag.String("chip", "xgene3", "chip: xgene2 or xgene3")
	mode := flag.String("mode", "optimal", "daemon mode: optimal, placement or monitor")
	flag.Parse()

	var spec *chip.Spec
	switch *chipFlag {
	case "xgene2":
		spec = chip.XGene2Spec()
	case "xgene3":
		spec = chip.XGene3Spec()
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipFlag)
		os.Exit(2)
	}

	var cfg daemon.Config
	switch *mode {
	case "optimal":
		cfg = daemon.DefaultConfig()
	case "placement":
		cfg = daemon.PlacementOnlyConfig()
	case "monitor":
		cfg = daemon.DefaultConfig()
		cfg.AdaptPlacement = false
		cfg.AdaptVoltage = false
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	m := sim.New(spec)
	m.EnableEventLog()
	mgmt := slimpro.Attach(m)
	d := daemon.New(m, cfg)
	d.Attach()
	fs := sysfs.New(m)

	fmt.Printf("avfsd: %s, %d cores (%d PMDs), nominal %v, daemon mode %s\n",
		spec.Name, spec.Cores, spec.PMDs(), spec.NominalMV, *mode)

	sc := bufio.NewScanner(os.Stdin)
	for {
		fmt.Print("> ")
		if !sc.Scan() {
			break
		}
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "quit", "exit":
			return
		case "bench":
			for _, b := range workload.All() {
				cls := "cpu"
				if b.MemoryIntensive() {
					cls = "memory"
				}
				fmt.Printf("  %-14s %-18s %s-intensive\n", b.Name, b.Suite, cls)
			}
		case "submit":
			if len(fields) != 3 {
				fmt.Println("usage: submit <benchmark> <threads>")
				continue
			}
			b, err := workload.ByName(fields[1])
			if err != nil {
				fmt.Println(err)
				continue
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				fmt.Println("bad thread count:", fields[2])
				continue
			}
			p, err := m.Submit(b, n)
			if err != nil {
				fmt.Println(err)
				continue
			}
			fmt.Printf("submitted process %d (%s, %d threads)\n", p.ID, b.Name, n)
		case "run":
			if len(fields) != 2 {
				fmt.Println("usage: run <seconds>")
				continue
			}
			s, err := strconv.ParseFloat(fields[1], 64)
			if err != nil || s <= 0 {
				fmt.Println("bad duration:", fields[1])
				continue
			}
			m.RunFor(s)
			fmt.Printf("t=%.1fs\n", m.Now())
		case "status":
			printStatus(m, d, mgmt)
		case "log":
			n := 20
			if len(fields) == 2 {
				if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
					n = v
				}
			}
			events := m.Events()
			if len(events) > n {
				events = events[len(events)-n:]
			}
			for _, e := range events {
				fmt.Println(" ", e)
			}
		case "sysfs":
			if len(fields) == 2 {
				v, err := fs.Read(fields[1])
				if err != nil {
					fmt.Println(err)
					continue
				}
				fmt.Println(v)
				continue
			}
			for _, p := range fs.List() {
				v, _ := fs.Read(p)
				fmt.Printf("  %-42s %s\n", p, v)
			}
		default:
			fmt.Println("commands: submit, run, status, log, sysfs, bench, quit")
		}
	}
}

func printStatus(m *sim.Machine, d *daemon.Daemon, mgmt *slimpro.Controller) {
	fmt.Printf("t=%.1fs  V=%v  droop class %d  busy cores %d/%d (%d PMDs)  die %.1fC\n",
		m.Now(), m.Chip.Voltage(), d.DroopClass(),
		len(m.ActiveCores()), m.Spec.Cores, m.UtilizedPMDCount(), mgmt.TemperatureC())
	for p := 0; p < m.Spec.PMDs(); p++ {
		fmt.Printf("  PMD%-2d %v", p, m.Chip.PMDFreq(chip.PMDID(p)))
		c0, c1 := m.Spec.CoresOf(chip.PMDID(p))
		for _, c := range []chip.CoreID{c0, c1} {
			if t := m.ThreadOn(c); t != nil {
				fmt.Printf("  core%d:%s#%d(%.0f%%)", c, t.Proc.Bench.Name, t.Proc.ID, 100*t.Progress())
			}
		}
		fmt.Println()
	}
	for _, p := range m.Running() {
		fmt.Printf("  proc %d %-12s %v  cores %v\n", p.ID, p.Bench.Name, d.ClassOf(p), p.Cores())
	}
	for _, p := range m.Pending() {
		fmt.Printf("  proc %d %-12s pending\n", p.ID, p.Bench.Name)
	}
	st := d.Stats()
	fmt.Printf("  energy %.1fJ  avg %.2fW  polls %d  migrations %d  vchanges %d  emergencies %d\n",
		m.Meter.Energy(), m.Meter.AveragePower(), st.Polls, st.Migrations, st.VoltageChanges, len(m.Emergencies()))
}
