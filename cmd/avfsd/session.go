package main

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/droop"
	"avfs/internal/sim"
	"avfs/internal/slimpro"
	"avfs/internal/sysfs"
	"avfs/internal/telemetry"
	texport "avfs/internal/telemetry/export"
	"avfs/internal/workload"
)

// session is one interactive daemon instance: machine, daemon, management
// controller, virtual sysfs and the telemetry plane, with every command
// writing to out. Factoring it out of main keeps the scripted-session
// tests on exactly the code path the CLI runs.
type session struct {
	spec   *chip.Spec
	m      *sim.Machine
	mgmt   *slimpro.Controller
	d      *daemon.Daemon
	fs     *sysfs.FS
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	jsonl  *texport.JSONL
	out    io.Writer
}

// newSession builds a fully wired session: the machine event log feeds
// the telemetry bus, the daemon and SLIMpro controller register their
// metrics, and sysfs exposes the registry as read-only nodes.
func newSession(spec *chip.Spec, cfg daemon.Config, out io.Writer) *session {
	m := sim.New(spec)
	m.EnableEventLog()
	reg := telemetry.NewRegistry()
	tracer := telemetry.NewTracer()
	telemetry.WireMachine(m, reg, tracer)
	mgmt := slimpro.Attach(m)
	mgmt.Instrument(reg)
	d := daemon.New(m, cfg)
	d.Instrument(reg, tracer)
	d.Attach()
	fs := sysfs.New(m)
	fs.AttachTelemetry(reg)
	return &session{
		spec: spec, m: m, mgmt: mgmt, d: d, fs: fs,
		reg: reg, tracer: tracer, out: out,
	}
}

// streamJSONL attaches a JSONL decision-trace sink (the -telemetry flag).
func (s *session) streamJSONL(w io.Writer) {
	s.jsonl = texport.NewJSONL(w)
	s.jsonl.Attach(s.tracer)
}

// close flushes any attached trace stream.
func (s *session) close() {
	if s.jsonl != nil {
		if err := s.jsonl.Flush(); err != nil {
			fmt.Fprintln(s.out, "telemetry stream:", err)
		}
	}
}

// exec runs one command line, returning true when the session should end.
func (s *session) exec(line string) bool {
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return false
	}
	switch fields[0] {
	case "quit", "exit":
		return true
	case "bench":
		for _, b := range workload.All() {
			cls := "cpu"
			if b.MemoryIntensive() {
				cls = "memory"
			}
			fmt.Fprintf(s.out, "  %-14s %-18s %s-intensive\n", b.Name, b.Suite, cls)
		}
	case "submit":
		s.cmdSubmit(fields)
	case "run":
		s.cmdRun(fields)
	case "status":
		s.printStatus()
	case "stats":
		s.printStats()
	case "trace":
		s.cmdTrace(fields)
	case "dump":
		s.cmdDump(fields)
	case "log":
		s.cmdLog(fields)
	case "sysfs":
		s.cmdSysfs(fields)
	default:
		fmt.Fprintln(s.out, "commands: submit, run, status, stats, trace, dump, log, sysfs, bench, quit")
	}
	return false
}

func (s *session) cmdSubmit(fields []string) {
	if len(fields) != 3 {
		fmt.Fprintln(s.out, "usage: submit <benchmark> <threads>")
		return
	}
	b, err := workload.ByName(fields[1])
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	n, err := strconv.Atoi(fields[2])
	if err != nil {
		fmt.Fprintln(s.out, "bad thread count:", fields[2])
		return
	}
	p, err := s.m.Submit(b, n)
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	fmt.Fprintf(s.out, "submitted process %d (%s, %d threads)\n", p.ID, b.Name, n)
}

func (s *session) cmdRun(fields []string) {
	if len(fields) != 2 {
		fmt.Fprintln(s.out, "usage: run <seconds>")
		return
	}
	sec, err := strconv.ParseFloat(fields[1], 64)
	if err != nil || sec <= 0 {
		fmt.Fprintln(s.out, "bad duration:", fields[1])
		return
	}
	s.m.RunFor(sec)
	fmt.Fprintf(s.out, "t=%.1fs\n", s.m.Now())
}

func (s *session) cmdTrace(fields []string) {
	if len(fields) != 2 || (fields[1] != "on" && fields[1] != "off") {
		fmt.Fprintln(s.out, "usage: trace on|off")
		return
	}
	s.tracer.SetEnabled(fields[1] == "on")
	fmt.Fprintf(s.out, "decision trace %s\n", fields[1])
}

func (s *session) cmdDump(fields []string) {
	if len(fields) != 2 {
		fmt.Fprintln(s.out, "usage: dump <file>")
		return
	}
	f, err := os.Create(fields[1])
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	err = texport.Prometheus(f, s.reg)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintln(s.out, err)
		return
	}
	fmt.Fprintf(s.out, "metrics dumped to %s\n", fields[1])
}

func (s *session) cmdLog(fields []string) {
	n := 20
	if len(fields) == 2 {
		if v, err := strconv.Atoi(fields[1]); err == nil && v > 0 {
			n = v
		}
	}
	events := s.m.Events()
	if len(events) > n {
		events = events[len(events)-n:]
	}
	for _, e := range events {
		fmt.Fprintln(s.out, " ", e)
	}
}

func (s *session) cmdSysfs(fields []string) {
	if len(fields) == 2 {
		v, err := s.fs.Read(fields[1])
		if err != nil {
			fmt.Fprintln(s.out, err)
			return
		}
		fmt.Fprintln(s.out, v)
		return
	}
	for _, p := range s.fs.List() {
		v, _ := s.fs.Read(p)
		fmt.Fprintf(s.out, "  %-42s %s\n", p, v)
	}
}

// metric reads one scalar metric from the registry by canonical name.
func (s *session) metric(name string) float64 {
	v, _ := s.reg.Value(name)
	return v
}

// printStatus renders the machine/daemon/energy state. Every number on
// the summary lines comes from the telemetry registry, so the interactive
// view and the exported metrics cannot disagree; only the structural
// topology walk reads the machine directly.
func (s *session) printStatus() {
	avgW := 0.0
	if secs := s.m.Meter.Seconds(); secs > 0 {
		avgW = s.metric(telemetry.MetricEnergyJoules) / secs
	}
	fmt.Fprintf(s.out, "t=%.1fs  V=%vmV  droop class %v  busy cores %v/%d (%v PMDs)  die %.1fC\n",
		s.metric(telemetry.MetricSimSeconds),
		s.metric(telemetry.MetricVoltageMV),
		droop.MagnitudeClass(s.metric(telemetry.MetricDroopClass)),
		s.metric(telemetry.MetricBusyCores), s.spec.Cores,
		s.metric(telemetry.MetricUtilizedPMDs),
		s.metric(telemetry.MetricTemperatureC))
	for p := 0; p < s.spec.PMDs(); p++ {
		fmt.Fprintf(s.out, "  PMD%-2d %v", p, s.m.Chip.PMDFreq(chip.PMDID(p)))
		c0, c1 := s.spec.CoresOf(chip.PMDID(p))
		for _, c := range []chip.CoreID{c0, c1} {
			if t := s.m.ThreadOn(c); t != nil {
				fmt.Fprintf(s.out, "  core%d:%s#%d(%.0f%%)", c, t.Proc.Bench.Name, t.Proc.ID, 100*t.Progress())
			}
		}
		fmt.Fprintln(s.out)
	}
	for _, p := range s.m.Running() {
		fmt.Fprintf(s.out, "  proc %d %-12s %v  cores %v\n", p.ID, p.Bench.Name, s.d.ClassOf(p), p.Cores())
	}
	for _, p := range s.m.Pending() {
		fmt.Fprintf(s.out, "  proc %d %-12s pending\n", p.ID, p.Bench.Name)
	}
	fmt.Fprintf(s.out, "  energy %.1fJ  avg %.2fW  polls %v  migrations %v  vchanges %v  emergencies %v\n",
		s.metric(telemetry.MetricEnergyJoules), avgW,
		s.metric(daemon.MetricPolls),
		s.metric(daemon.MetricMigrations),
		s.metric(daemon.MetricVoltageChanges),
		s.metric(telemetry.MetricEmergencies))
}

// printStats lists every registry metric; histograms show count, sum and
// per-bucket observations.
func (s *session) printStats() {
	for _, smp := range s.reg.Gather() {
		if smp.Kind == telemetry.KindHistogram {
			fmt.Fprintf(s.out, "  %-52s count=%d sum=%.4g\n", smp.Full, int64(smp.Value), smp.Sum)
			for i, c := range smp.Buckets {
				if c == 0 {
					continue
				}
				le := "+Inf"
				if i < len(smp.Bounds) {
					le = strconv.FormatFloat(smp.Bounds[i], 'g', -1, 64)
				}
				fmt.Fprintf(s.out, "  %-52s   le=%s: %d\n", "", le, c)
			}
			continue
		}
		fmt.Fprintf(s.out, "  %-52s %v\n", smp.Full, smp.Value)
	}
}
