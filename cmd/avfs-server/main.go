// Command avfs-server hosts the AVFS fleet control plane: many independent
// simulated (machine, daemon) sessions behind the HTTP/JSON v1 API — the
// network surface of the paper's long-running system service (Sec. V),
// scaled out to a fleet. See docs/API.md for the endpoint contract and
// avfs/client for the Go consumer.
//
// Usage:
//
//	avfs-server [-addr :8080] [-max-sessions 256] [-ttl 15m]
//	            [-workers N] [-queue M] [-chunk 1.0] [-cache-dir DIR]
//
// Flags:
//
//	-addr          listen address (default :8080)
//	-max-sessions  live-session cap; creation beyond it is 429 fleet_full
//	-ttl           idle-session reaping deadline (default 15m)
//	-workers       concurrent runs across all sessions (default GOMAXPROCS)
//	-queue         admitted-but-waiting runs before 429 busy (default 4x)
//	-chunk         simulated seconds a run holds its session lock for
//	-cache-dir     persist characterization datasets under this directory,
//	               so the fleet's content-addressed store survives restarts
//
// On SIGTERM/SIGINT the server drains gracefully: the listener stops, new
// sessions and runs are rejected with 503 + Retry-After, and every
// admitted run — including queued async jobs — finishes before exit. A
// second signal forces shutdown, aborting in-flight runs at their next
// tick-batch commit.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"avfs/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxSessions := flag.Int("max-sessions", 256, "live-session cap")
	ttl := flag.Duration("ttl", 15*time.Minute, "idle-session reaping deadline")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "run admission queue depth (0 = 4x workers)")
	chunk := flag.Float64("chunk", 1.0, "simulated seconds per session-lock hold")
	cacheDir := flag.String("cache-dir", "", "persist characterization datasets under this directory (default: in-process memoization only)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful drain budget before forcing shutdown")
	flag.Parse()

	fleet := service.New(service.Config{
		MaxSessions: *maxSessions,
		SessionTTL:  *ttl,
		Workers:     *workers,
		Queue:       *queue,
		RunChunk:    *chunk,
		CacheDir:    *cacheDir,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           fleet.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "avfs-server: listening on %s (max %d sessions, ttl %v)\n",
		*addr, *maxSessions, *ttl)

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "avfs-server: %v\n", err)
			os.Exit(1)
		}
		return
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "avfs-server: %v: draining (again to force)\n", sig)
	}

	// Graceful drain: stop the listener, finish in-flight requests and
	// admitted runs. A second signal (or the drain budget) forces exit.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "avfs-server: %v: forcing shutdown\n", sig)
			cancel()
		case <-drainCtx.Done():
		}
	}()

	_ = srv.Shutdown(drainCtx)
	if err := fleet.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "avfs-server: drain incomplete: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "avfs-server: drained cleanly")
	}
	fleet.Close()
}
