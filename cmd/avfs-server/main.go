// Command avfs-server hosts the AVFS fleet control plane: many independent
// simulated (machine, daemon) sessions behind the HTTP/JSON v1 API — the
// network surface of the paper's long-running system service (Sec. V),
// scaled out to a fleet. See docs/API.md for the endpoint contract and
// avfs/client for the Go consumer.
//
// Usage:
//
//	avfs-server [-addr :8080] [-max-sessions 256] [-ttl 15m]
//	            [-workers N] [-queue M] [-chunk 1.0] [-cache-dir DIR]
//	            [-snapshot-dir DIR] [-drain-timeout 2m] [-access-log PATH]
//	            [-slow-ms 1000] [-slo-window 1m] [-pprof-addr ADDR]
//	            [-no-trace]
//	            [-router URL -node NAME -advertise URL [-heartbeat 2s]]
//
// Flags:
//
//	-addr          listen address (default :8080)
//	-max-sessions  live-session cap; creation beyond it is 429 fleet_full
//	-ttl           idle-session reaping deadline (default 15m)
//	-workers       concurrent runs across all sessions (default GOMAXPROCS)
//	-queue         admitted-but-waiting runs before 429 busy (default 4x)
//	-chunk         simulated seconds a run holds its session lock for
//	-cache-dir     persist characterization datasets (and, under its
//	               surrogate/ subdirectory, fitted surrogate models) so the
//	               fleet's content-addressed stores survive restarts; safe
//	               to share between server processes on one filesystem —
//	               writes are temp-file + atomic rename, and racing writers
//	               can only produce identical content
//	-snapshot-dir  persist session snapshots under this directory, so fork
//	               and what-if can resolve snapshot ids across restarts
//	-drain-timeout graceful drain budget before shutdown is forced
//	               (default 2m)
//	-access-log    JSONL access log: a file path, or "-" for stderr
//	-slow-ms       slow-request threshold in milliseconds; slow requests
//	               are flagged in the access log and mirrored to stderr
//	-slo-window    rolling window for /v1/sessions/{id}/slo quantiles
//	-pprof-addr    serve net/http/pprof on a SEPARATE listener (e.g.
//	               localhost:6060); off unless set, and deliberately not
//	               mounted on the public API address
//	-no-trace      disable spans and SLO tracking (the metrics registry
//	               and access log stay on)
//	-router        register with a cluster router at this base URL (see
//	               cmd/avfs-router); requires -node and -advertise
//	-node          this node's cluster name; session IDs and the
//	               X-AVFS-Node header carry it
//	-advertise     base URL peers and the router reach this node at
//	-heartbeat     router heartbeat period (default 2s)
//
// On SIGTERM/SIGINT the server drains gracefully: the listener stops, new
// sessions and runs are rejected with 503 + Retry-After, and every
// admitted run — including queued async jobs — finishes before exit. A
// second signal forces shutdown, aborting in-flight runs at their next
// tick-batch commit. When registered with a router, the drain also
// migrates every session to its rendezvous-chosen ready peer and
// deregisters, so a scale-in loses no session state.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"avfs/internal/cluster"
	"avfs/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	maxSessions := flag.Int("max-sessions", 256, "live-session cap")
	ttl := flag.Duration("ttl", 15*time.Minute, "idle-session reaping deadline")
	workers := flag.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 0, "run admission queue depth (0 = 4x workers)")
	chunk := flag.Float64("chunk", 1.0, "simulated seconds per session-lock hold")
	cacheDir := flag.String("cache-dir", "", "persist characterization datasets under this directory (default: in-process memoization only)")
	snapshotDir := flag.String("snapshot-dir", "", "persist session snapshots under this directory (default: in-process only)")
	drainTimeout := flag.Duration("drain-timeout", 2*time.Minute, "graceful drain budget before forcing shutdown")
	accessLog := flag.String("access-log", "", `JSONL access log path ("-" = stderr, "" = off)`)
	slowMS := flag.Int("slow-ms", 1000, "slow-request threshold in milliseconds")
	sloWindow := flag.Duration("slo-window", time.Minute, "rolling window for session SLO quantiles")
	pprofAddr := flag.String("pprof-addr", "", "serve net/http/pprof on this separate address (off when empty)")
	noTrace := flag.Bool("no-trace", false, "disable request spans and SLO tracking")
	routerURL := flag.String("router", "", "cluster router base URL (off when empty)")
	nodeName := flag.String("node", "", "cluster node name (required with -router)")
	advertiseURL := flag.String("advertise", "", "base URL this node is reachable at (required with -router)")
	heartbeat := flag.Duration("heartbeat", 2*time.Second, "router heartbeat period")
	flag.Parse()
	if *routerURL != "" && (*nodeName == "" || *advertiseURL == "") {
		fmt.Fprintln(os.Stderr, "avfs-server: -router requires -node and -advertise")
		os.Exit(2)
	}

	var accessW io.Writer
	switch *accessLog {
	case "":
	case "-":
		accessW = os.Stderr
	default:
		lf, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfs-server: access log: %v\n", err)
			os.Exit(1)
		}
		defer lf.Close()
		accessW = lf
	}

	fleet := service.New(service.Config{
		MaxSessions: *maxSessions,
		SessionTTL:  *ttl,
		Workers:     *workers,
		Queue:       *queue,
		RunChunk:    *chunk,
		CacheDir:    *cacheDir,
		SnapshotDir: *snapshotDir,
		AccessLog:   accessW,
		SlowLog:     os.Stderr,
		SlowRequest: time.Duration(*slowMS) * time.Millisecond,
		SLOWindow:   *sloWindow,
		NoTrace:     *noTrace,
		NodeName:    *nodeName,
	})

	if *pprofAddr != "" {
		// Profiling stays off the public API listener: the pprof surface
		// exposes heap contents and must only bind somewhere private.
		pmux := http.NewServeMux()
		pmux.HandleFunc("/debug/pprof/", pprof.Index)
		pmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		pmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		pmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		pmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		psrv := &http.Server{Addr: *pprofAddr, Handler: pmux, ReadHeaderTimeout: 10 * time.Second}
		go func() {
			fmt.Fprintf(os.Stderr, "avfs-server: pprof on %s\n", *pprofAddr)
			if err := psrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "avfs-server: pprof: %v\n", err)
			}
		}()
		defer psrv.Close()
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           fleet.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "avfs-server: listening on %s (max %d sessions, ttl %v)\n",
		*addr, *maxSessions, *ttl)

	var agent *cluster.Agent
	if *routerURL != "" {
		var err error
		agent, err = cluster.NewAgent(cluster.AgentConfig{
			Fleet:        fleet,
			RouterURL:    *routerURL,
			Name:         *nodeName,
			AdvertiseURL: *advertiseURL,
			Interval:     *heartbeat,
		})
		if err == nil {
			err = agent.Start()
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "avfs-server: cluster registration: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "avfs-server: registered with router %s as %s (%s)\n",
			*routerURL, *nodeName, *advertiseURL)
	}

	sigCh := make(chan os.Signal, 2)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)

	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "avfs-server: %v\n", err)
			os.Exit(1)
		}
		return
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "avfs-server: %v: draining (again to force)\n", sig)
	}

	// Graceful drain: stop the listener, finish in-flight requests and
	// admitted runs. A second signal (or the drain budget) forces exit.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	go func() {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "avfs-server: %v: forcing shutdown\n", sig)
			cancel()
		case <-drainCtx.Done():
		}
	}()

	// With a router: announce draining first so placement stops before
	// the listener does, then (after local runs finish) hand every
	// session to a peer and leave the membership.
	if agent != nil {
		if err := agent.SetDraining(drainCtx, true); err != nil {
			fmt.Fprintf(os.Stderr, "avfs-server: drain announcement: %v\n", err)
		}
	}
	_ = srv.Shutdown(drainCtx)
	if err := fleet.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "avfs-server: drain incomplete: %v\n", err)
	} else {
		fmt.Fprintln(os.Stderr, "avfs-server: drained cleanly")
	}
	if agent != nil {
		moved, errs := agent.MigrateAll(drainCtx)
		fmt.Fprintf(os.Stderr, "avfs-server: migrated %d sessions to peers (%d failures)\n",
			len(moved), len(errs))
		for _, err := range errs {
			fmt.Fprintf(os.Stderr, "avfs-server:   %v\n", err)
		}
		agent.Stop()
		if err := agent.Deregister(context.Background()); err != nil {
			fmt.Fprintf(os.Stderr, "avfs-server: deregister: %v\n", err)
		}
	}
	fleet.Close()
}
