package main

import "testing"

func TestChipsFor(t *testing.T) {
	both, err := chipsFor("both")
	if err != nil || len(both) != 2 {
		t.Fatalf("both: %v, %v", both, err)
	}
	x2, err := chipsFor("xgene2")
	if err != nil || len(x2) != 1 || x2[0].Cores != 8 {
		t.Fatalf("xgene2: %v, %v", x2, err)
	}
	x3, err := chipsFor("xgene3")
	if err != nil || len(x3) != 1 || x3[0].Cores != 32 {
		t.Fatalf("xgene3: %v, %v", x3, err)
	}
	if _, err := chipsFor("nope"); err == nil {
		t.Error("unknown chip must error")
	}
}

func TestSanitizeChip(t *testing.T) {
	if got := sanitizeChip("X-Gene 2"); got != "x-gene-2" {
		t.Errorf("sanitizeChip = %q", got)
	}
}
