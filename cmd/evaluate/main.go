// Command evaluate reproduces the paper's system-level evaluation
// (Sec. VI-B): it generates a random server workload, replays it under the
// four system configurations (Baseline, Safe Vmin, Placement, Optimal) and
// prints Tables III/IV plus the Fig. 14/15 timelines.
//
// Usage:
//
//	evaluate [-chip xgene2|xgene3|both] [-duration 3600] [-seed 42]
//	         [-fig14] [-fig15] [-seeds N] [-csv DIR] [-j N]
//	         [-cache-dir DIR] [-cpuprofile FILE] [-memprofile FILE]
//
// -j sets the worker-pool width: the four configuration replays (or the
// seeds of the robustness study) run in parallel, with results identical
// for any width. -cache-dir persists any Monte Carlo characterization
// datasets the campaign requests (see EXPERIMENTS.md). -cpuprofile and
// -memprofile write pprof profiles covering the whole campaign.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"avfs/internal/chip"
	"avfs/internal/experiments"
	"avfs/internal/export"
	"avfs/internal/profiling"
	"avfs/internal/vmin/store"
	"avfs/internal/wlgen"
)

// sanitizeChip turns a chip name into a directory fragment.
func sanitizeChip(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "-")
}

// main defers to run so profile flushing (and any other deferred cleanup)
// happens before the process exits.
func main() {
	os.Exit(run())
}

func run() int {
	chipFlag := flag.String("chip", "both", "chip to evaluate: xgene2, xgene3 or both")
	duration := flag.Float64("duration", 3600, "workload duration in seconds")
	seed := flag.Int64("seed", 42, "workload generator seed")
	fig14 := flag.Bool("fig14", false, "also render the Fig. 14 power timeline")
	fig15 := flag.Bool("fig15", false, "also render the Fig. 15 load timeline")
	seeds := flag.Int("seeds", 0, "run the multi-seed robustness study over N seeds instead of the table")
	csvDir := flag.String("csv", "", "also export summary and timelines as CSV files into this directory")
	jobs := flag.Int("j", 0, "parallel worker cap (0 = adaptive: min(jobs, cores)) for the configuration replays")
	cacheDir := flag.String("cache-dir", "", "persist characterization datasets under this directory (default: in-process memoization only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
		}
	}()

	ctx := context.Background()
	cam := experiments.Campaign{Workers: *jobs, Store: store.New(*cacheDir)}
	specs, err := chipsFor(*chipFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, spec := range specs {
		if *seeds > 0 {
			var list []int64
			for i := 0; i < *seeds; i++ {
				list = append(list, *seed+int64(i))
			}
			st, err := experiments.RunSeedStudyContext(ctx, cam, spec, *duration, list)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evaluate:", err)
				return 1
			}
			st.Render(os.Stdout)
			fmt.Println()
			continue
		}
		wl := wlgen.Generate(spec, wlgen.Config{Duration: *duration}, *seed)
		fmt.Printf("generated workload: %d processes, %d threads total, %.0f%% memory-intensive\n",
			wl.TotalProcesses(), wl.TotalThreads(), 100*wl.MemoryIntensiveShare())
		set, err := experiments.EvaluateAllContext(ctx, cam, spec, wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			return 1
		}
		set.Render(os.Stdout)
		if *csvDir != "" {
			dir := filepath.Join(*csvDir, sanitizeChip(spec.Name))
			if err := export.EvalSet(dir, set); err != nil {
				fmt.Fprintln(os.Stderr, "evaluate: csv export:", err)
				return 1
			}
			fmt.Println("CSV written to", dir)
		}
		fmt.Println()
		set.RenderBreakdown(os.Stdout)
		if *fig14 {
			fmt.Println()
			set.RenderFig14(os.Stdout, 100)
		}
		if *fig15 {
			fmt.Println()
			set.RenderFig15(os.Stdout, 100)
		}
		fmt.Println()
	}
	return 0
}

func chipsFor(name string) ([]*chip.Spec, error) {
	switch name {
	case "xgene2":
		return []*chip.Spec{chip.XGene2Spec()}, nil
	case "xgene3":
		return []*chip.Spec{chip.XGene3Spec()}, nil
	case "both":
		return []*chip.Spec{chip.XGene2Spec(), chip.XGene3Spec()}, nil
	}
	return nil, fmt.Errorf("unknown chip %q (want xgene2, xgene3 or both)", name)
}
