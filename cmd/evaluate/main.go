// Command evaluate reproduces the paper's system-level evaluation
// (Sec. VI-B): it generates a random server workload, replays it under the
// four system configurations (Baseline, Safe Vmin, Placement, Optimal) and
// prints Tables III/IV plus the Fig. 14/15 timelines.
//
// Usage:
//
//	evaluate [-chip xgene2|xgene3|both] [-duration 3600] [-seed 42]
//	         [-fig14] [-fig15] [-seeds N] [-csv DIR] [-j N]
//	         [-cache-dir DIR] [-cpuprofile FILE] [-memprofile FILE]
//	         [-instant [-node NM] [-scaling cons|itrs] [-sweep-nodes]]
//
// -j sets the worker-pool width: the four configuration replays (or the
// seeds of the robustness study) run in parallel, with results identical
// for any width. -cache-dir persists any Monte Carlo characterization
// datasets the campaign requests — and, under its surrogate/
// subdirectory, fitted surrogate models (see EXPERIMENTS.md).
// -cpuprofile and -memprofile write pprof profiles covering the whole
// campaign.
//
// -instant answers the Table IV comparison from the closed-form
// surrogate tier instead of replaying the workload: after a one-time
// model fit, every (configuration, tech node) cell is a microsecond
// query. -node projects the chip onto a 28/16/7nm technology node under
// the -scaling roadmap ("cons" or "itrs"); -sweep-nodes prints the whole
// node x roadmap grid.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"avfs/internal/chip"
	"avfs/internal/experiments"
	"avfs/internal/export"
	"avfs/internal/profiling"
	"avfs/internal/surrogate"
	"avfs/internal/vmin/store"
	"avfs/internal/wlgen"
)

// sanitizeChip turns a chip name into a directory fragment.
func sanitizeChip(name string) string {
	return strings.ReplaceAll(strings.ToLower(name), " ", "-")
}

// main defers to run so profile flushing (and any other deferred cleanup)
// happens before the process exits.
func main() {
	os.Exit(run())
}

func run() int {
	chipFlag := flag.String("chip", "both", "chip to evaluate: xgene2, xgene3 or both")
	duration := flag.Float64("duration", 3600, "workload duration in seconds")
	seed := flag.Int64("seed", 42, "workload generator seed")
	fig14 := flag.Bool("fig14", false, "also render the Fig. 14 power timeline")
	fig15 := flag.Bool("fig15", false, "also render the Fig. 15 load timeline")
	seeds := flag.Int("seeds", 0, "run the multi-seed robustness study over N seeds instead of the table")
	csvDir := flag.String("csv", "", "also export summary and timelines as CSV files into this directory")
	jobs := flag.Int("j", 0, "parallel worker cap (0 = adaptive: min(jobs, cores)) for the configuration replays")
	cacheDir := flag.String("cache-dir", "", "persist characterization datasets under this directory (default: in-process memoization only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	instant := flag.Bool("instant", false, "answer the Table IV comparison from the closed-form surrogate tier instead of simulating")
	nodeFlag := flag.String("node", "native", `technology node for -instant: "native", "28nm", "16nm" or "7nm"`)
	scalingFlag := flag.String("scaling", "cons", `tech-node scaling roadmap for -instant: "cons" (conservative) or "itrs"`)
	sweepNodes := flag.Bool("sweep-nodes", false, "with -instant: sweep every tech node under both scaling roadmaps")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evaluate:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
		}
	}()

	ctx := context.Background()
	cam := experiments.Campaign{Workers: *jobs, Store: store.New(*cacheDir)}
	specs, err := chipsFor(*chipFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	for _, spec := range specs {
		if *instant || *sweepNodes {
			if err := runInstant(spec, *duration, *seed, *nodeFlag, *scalingFlag, *sweepNodes, *cacheDir); err != nil {
				fmt.Fprintln(os.Stderr, "evaluate:", err)
				return 1
			}
			fmt.Println()
			continue
		}
		if *seeds > 0 {
			var list []int64
			for i := 0; i < *seeds; i++ {
				list = append(list, *seed+int64(i))
			}
			st, err := experiments.RunSeedStudyContext(ctx, cam, spec, *duration, list)
			if err != nil {
				fmt.Fprintln(os.Stderr, "evaluate:", err)
				return 1
			}
			st.Render(os.Stdout)
			fmt.Println()
			continue
		}
		wl := wlgen.Generate(spec, wlgen.Config{Duration: *duration}, *seed)
		fmt.Printf("generated workload: %d processes, %d threads total, %.0f%% memory-intensive\n",
			wl.TotalProcesses(), wl.TotalThreads(), 100*wl.MemoryIntensiveShare())
		set, err := experiments.EvaluateAllContext(ctx, cam, spec, wl)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evaluate:", err)
			return 1
		}
		set.Render(os.Stdout)
		if *csvDir != "" {
			dir := filepath.Join(*csvDir, sanitizeChip(spec.Name))
			if err := export.EvalSet(dir, set); err != nil {
				fmt.Fprintln(os.Stderr, "evaluate: csv export:", err)
				return 1
			}
			fmt.Println("CSV written to", dir)
		}
		fmt.Println()
		set.RenderBreakdown(os.Stdout)
		if *fig14 {
			fmt.Println()
			set.RenderFig14(os.Stdout, 100)
		}
		if *fig15 {
			fmt.Println()
			set.RenderFig15(os.Stdout, 100)
		}
		fmt.Println()
	}
	return 0
}

// runInstant answers the Table IV comparison from the surrogate tier:
// one workload, every system configuration, on the native chip or a
// grid of technology-node projections. Queries are closed-form — the
// printed elapsed time covers the whole grid after the one-time fit.
func runInstant(spec *chip.Spec, duration float64, seed int64, nodeStr, scalingStr string, sweep bool, cacheDir string) error {
	wl := wlgen.Generate(spec, wlgen.Config{Duration: duration}, seed)
	fmt.Printf("generated workload: %d processes, %d threads total, %.0f%% memory-intensive\n",
		wl.TotalProcesses(), wl.TotalThreads(), 100*wl.MemoryIntensiveShare())

	dir := ""
	if cacheDir != "" {
		dir = filepath.Join(cacheDir, "surrogate")
	}
	fitStart := time.Now()
	model, err := surrogate.NewStore(dir).Get(spec, surrogate.FitConfig{})
	if err != nil {
		return err
	}
	fitDur := time.Since(fitStart)

	type variant struct {
		label string
		node  surrogate.TechNode
		sm    surrogate.ScalingModel
	}
	var variants []variant
	if sweep {
		variants = append(variants, variant{"native", 0, surrogate.CONS})
		for _, sm := range []surrogate.ScalingModel{surrogate.CONS, surrogate.ITRS} {
			for _, n := range surrogate.Nodes() {
				variants = append(variants, variant{n.String(), n, sm})
			}
		}
	} else {
		node, err := surrogate.ParseTechNode(nodeStr)
		if err != nil {
			return err
		}
		sm, err := surrogate.ParseScalingModel(scalingStr)
		if err != nil {
			return err
		}
		label := "native"
		if node != 0 {
			label = node.String()
		}
		variants = append(variants, variant{label, node, sm})
	}

	fmt.Printf("\ninstant estimates (%s, closed-form surrogate; fit %v):\n", spec.Name, fitDur.Round(time.Millisecond))
	fmt.Printf("%-8s %-8s %-10s %9s %8s %11s %8s\n",
		"node", "scaling", "config", "time(s)", "avg W", "energy(J)", "vs base")
	queryStart := time.Now()
	for _, v := range variants {
		est, err := surrogate.NewEstimator(spec, model, v.node, v.sm)
		if err != nil {
			return err
		}
		base := 0.0
		for _, cfg := range experiments.SystemConfigs() {
			se := est.EstimateWorkload(wl, cfg)
			if cfg == experiments.Baseline {
				base = se.EnergyJ
			}
			saved := "-"
			if cfg != experiments.Baseline && base > 0 {
				saved = fmt.Sprintf("%+.1f%%", 100*(se.EnergyJ-base)/base)
			}
			fmt.Printf("%-8s %-8s %-10s %9.1f %8.2f %11.1f %8s\n",
				v.label, v.sm, cfg, se.Seconds, se.AvgPowerW, se.EnergyJ, saved)
		}
	}
	fmt.Printf("%d cells answered in %v\n",
		4*len(variants), time.Since(queryStart).Round(time.Microsecond))
	return nil
}

func chipsFor(name string) ([]*chip.Spec, error) {
	switch name {
	case "xgene2":
		return []*chip.Spec{chip.XGene2Spec()}, nil
	case "xgene3":
		return []*chip.Spec{chip.XGene3Spec()}, nil
	case "both":
		return []*chip.Spec{chip.XGene2Spec(), chip.XGene3Spec()}, nil
	}
	return nil, fmt.Errorf("unknown chip %q (want xgene2, xgene3 or both)", name)
}
