// Command classify reproduces the paper's workload-classification studies:
// the contention-sensitivity ratios of Fig. 8 and the L3C access rates and
// 3K-threshold classification of Fig. 9.
//
// Usage:
//
//	classify [-experiment fig8|fig9|all] [-chip xgene2|xgene3]
package main

import (
	"flag"
	"fmt"
	"os"

	"avfs/internal/chip"
	"avfs/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment: fig8, fig9 or all")
	chipFlag := flag.String("chip", "xgene3", "chip: xgene2 or xgene3")
	flag.Parse()

	var spec *chip.Spec
	switch *chipFlag {
	case "xgene2":
		spec = chip.XGene2Spec()
	case "xgene3":
		spec = chip.XGene3Spec()
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipFlag)
		os.Exit(2)
	}

	ran := false
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		fmt.Printf("=== %s ===\n", name)
		fn()
		fmt.Println()
	}

	run("fig8", func() { experiments.Figure8(spec).Render(os.Stdout) })
	run("fig9", func() { experiments.Figure9(spec).Render(os.Stdout) })

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig8, fig9 or all)\n", *exp)
		os.Exit(2)
	}
}
