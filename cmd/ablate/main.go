// Command ablate runs the design-choice ablation and extension studies:
// sweeps of the classification threshold, voltage guard, monitoring
// period, hysteresis band, memory-PMD frequency (X-Gene 2), the relaxed-
// performance direction, the fail-safe transition ordering, aging drift,
// migration cost, and the power-capping comparison. Each sweep replays
// one fixed random workload under daemon variants and compares energy,
// time and safety against the Baseline.
//
// Usage:
//
//	ablate [-study threshold|guard|poll|hysteresis|memfreq|relaxed|
//	        protocol|aging|migration|capping|all]
//	       [-chip xgene2|xgene3] [-duration 900] [-seed 42] [-j N]
//	       [-cache-dir DIR] [-cpuprofile FILE] [-memprofile FILE]
//
// -j sets the worker-pool width used to run a sweep's variants in
// parallel; results are identical for any width. -cache-dir persists any
// Monte Carlo characterization datasets the studies request (see
// EXPERIMENTS.md). -cpuprofile and -memprofile write pprof profiles
// covering the whole run.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"avfs/internal/chip"
	"avfs/internal/experiments"
	"avfs/internal/profiling"
	"avfs/internal/vmin/store"
)

// main defers to run so profile flushing (and any other deferred cleanup)
// happens before the process exits.
func main() {
	os.Exit(run())
}

func run() int {
	study := flag.String("study", "all", "threshold, guard, poll, hysteresis, memfreq, relaxed, protocol, aging, migration, capping or all")
	chipFlag := flag.String("chip", "xgene3", "chip: xgene2 or xgene3")
	duration := flag.Float64("duration", 900, "workload duration in seconds")
	seed := flag.Int64("seed", 42, "workload seed")
	jobs := flag.Int("j", 0, "parallel worker cap (0 = adaptive: min(jobs, cores)) per sweep")
	cacheDir := flag.String("cache-dir", "", "persist characterization datasets under this directory (default: in-process memoization only)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write an allocation profile to this file")
	flag.Parse()

	var spec *chip.Spec
	switch *chipFlag {
	case "xgene2":
		spec = chip.XGene2Spec()
	case "xgene3":
		spec = chip.XGene3Spec()
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipFlag)
		return 2
	}

	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ablate:", err)
		return 1
	}
	defer func() {
		if err := stopProf(); err != nil {
			fmt.Fprintln(os.Stderr, "ablate:", err)
		}
	}()

	ctx := context.Background()
	cam := experiments.Campaign{Workers: *jobs, Store: store.New(*cacheDir)}

	type studyFn func() (experiments.AblationResult, error)
	studies := []struct {
		name string
		fn   studyFn
	}{
		{"threshold", func() (experiments.AblationResult, error) {
			return experiments.AblateThresholdContext(ctx, cam, spec, *duration, *seed)
		}},
		{"guard", func() (experiments.AblationResult, error) {
			return experiments.AblateGuardContext(ctx, cam, spec, *duration, *seed)
		}},
		{"poll", func() (experiments.AblationResult, error) {
			return experiments.AblatePollIntervalContext(ctx, cam, spec, *duration, *seed)
		}},
		{"hysteresis", func() (experiments.AblationResult, error) {
			return experiments.AblateHysteresisContext(ctx, cam, spec, *duration, *seed)
		}},
		{"memfreq", func() (experiments.AblationResult, error) {
			return experiments.AblateMemFreqContext(ctx, cam, *duration, *seed)
		}},
		{"relaxed", func() (experiments.AblationResult, error) {
			return experiments.AblateRelaxedContext(ctx, cam, spec, *duration, *seed)
		}},
		{"protocol", func() (experiments.AblationResult, error) {
			return experiments.AblateProtocolContext(ctx, cam, spec, *duration, *seed)
		}},
		{"aging", func() (experiments.AblationResult, error) {
			return experiments.AblateAgingContext(ctx, cam, spec, *duration, *seed)
		}},
		{"migration", func() (experiments.AblationResult, error) {
			return experiments.AblateMigrationCostContext(ctx, cam, spec, *duration, *seed)
		}},
	}

	ran := false
	for _, s := range studies {
		if *study != "all" && *study != s.name {
			continue
		}
		ran = true
		res, err := s.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablate %s: %v\n", s.name, err)
			return 1
		}
		res.Render(os.Stdout)
		fmt.Println()
	}
	if *study == "all" || *study == "capping" {
		ran = true
		st, err := experiments.RunCapStudyContext(ctx, cam, spec, *duration, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablate capping: %v\n", err)
			return 1
		}
		st.Render(os.Stdout)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown study %q\n", *study)
		return 2
	}
	return 0
}
