// Command ablate runs the design-choice ablation and extension studies:
// sweeps of the classification threshold, voltage guard, monitoring
// period, hysteresis band, memory-PMD frequency (X-Gene 2), the relaxed-
// performance direction, the fail-safe transition ordering, aging drift,
// migration cost, and the power-capping comparison. Each sweep replays
// one fixed random workload under daemon variants and compares energy,
// time and safety against the Baseline.
//
// Usage:
//
//	ablate [-study threshold|guard|poll|hysteresis|memfreq|relaxed|
//	        protocol|aging|migration|capping|all]
//	       [-chip xgene2|xgene3] [-duration 900] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"

	"avfs/internal/chip"
	"avfs/internal/experiments"
)

func main() {
	study := flag.String("study", "all", "threshold, guard, poll, hysteresis, memfreq, relaxed, protocol, aging, migration, capping or all")
	chipFlag := flag.String("chip", "xgene3", "chip: xgene2 or xgene3")
	duration := flag.Float64("duration", 900, "workload duration in seconds")
	seed := flag.Int64("seed", 42, "workload seed")
	flag.Parse()

	var spec *chip.Spec
	switch *chipFlag {
	case "xgene2":
		spec = chip.XGene2Spec()
	case "xgene3":
		spec = chip.XGene3Spec()
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipFlag)
		os.Exit(2)
	}

	type studyFn func() (experiments.AblationResult, error)
	studies := []struct {
		name string
		fn   studyFn
	}{
		{"threshold", func() (experiments.AblationResult, error) {
			return experiments.AblateThreshold(spec, *duration, *seed)
		}},
		{"guard", func() (experiments.AblationResult, error) {
			return experiments.AblateGuard(spec, *duration, *seed)
		}},
		{"poll", func() (experiments.AblationResult, error) {
			return experiments.AblatePollInterval(spec, *duration, *seed)
		}},
		{"hysteresis", func() (experiments.AblationResult, error) {
			return experiments.AblateHysteresis(spec, *duration, *seed)
		}},
		{"memfreq", func() (experiments.AblationResult, error) {
			return experiments.AblateMemFreq(*duration, *seed)
		}},
		{"relaxed", func() (experiments.AblationResult, error) {
			return experiments.AblateRelaxed(spec, *duration, *seed)
		}},
		{"protocol", func() (experiments.AblationResult, error) {
			return experiments.AblateProtocol(spec, *duration, *seed)
		}},
		{"aging", func() (experiments.AblationResult, error) {
			return experiments.AblateAging(spec, *duration, *seed)
		}},
		{"migration", func() (experiments.AblationResult, error) {
			return experiments.AblateMigrationCost(spec, *duration, *seed)
		}},
	}

	ran := false
	for _, s := range studies {
		if *study != "all" && *study != s.name {
			continue
		}
		ran = true
		res, err := s.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablate %s: %v\n", s.name, err)
			os.Exit(1)
		}
		res.Render(os.Stdout)
		fmt.Println()
	}
	if *study == "all" || *study == "capping" {
		ran = true
		st, err := experiments.RunCapStudy(spec, *duration, *seed)
		if err != nil {
			fmt.Fprintf(os.Stderr, "ablate capping: %v\n", err)
			os.Exit(1)
		}
		st.Render(os.Stdout)
		fmt.Println()
	}
	if !ran {
		fmt.Fprintf(os.Stderr, "unknown study %q\n", *study)
		os.Exit(2)
	}
}
