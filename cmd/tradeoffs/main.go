// Command tradeoffs reproduces the paper's energy/performance trade-off
// studies: the clustered-vs-spreaded energy comparison of Fig. 7 and the
// energy and ED2P grids of Figs. 11 and 12 (every thread-scaling and
// frequency option, each at its own safe Vmin).
//
// Usage:
//
//	tradeoffs [-experiment fig7|fig11|fig12|all] [-chip xgene2|xgene3|both]
//	          [-placement clustered|spreaded] [-j N] [-cache-dir DIR]
//
// -j sets the worker-pool width for the measurement campaigns; results
// are identical for any width. -cache-dir persists any Monte Carlo
// characterization datasets the campaigns request (see EXPERIMENTS.md).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"avfs/internal/chip"
	"avfs/internal/experiments"
	"avfs/internal/sim"
	"avfs/internal/vmin/store"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment: fig7, fig11, fig12 or all")
	chipFlag := flag.String("chip", "both", "chip: xgene2, xgene3 or both")
	placeFlag := flag.String("placement", "clustered", "allocation for fig11/fig12: clustered or spreaded")
	jobs := flag.Int("j", 0, "parallel worker cap (0 = adaptive: min(jobs, cores)) for the measurement campaigns")
	cacheDir := flag.String("cache-dir", "", "persist characterization datasets under this directory (default: in-process memoization only)")
	flag.Parse()

	var specs []*chip.Spec
	switch *chipFlag {
	case "xgene2":
		specs = []*chip.Spec{chip.XGene2Spec()}
	case "xgene3":
		specs = []*chip.Spec{chip.XGene3Spec()}
	case "both":
		specs = []*chip.Spec{chip.XGene2Spec(), chip.XGene3Spec()}
	default:
		fmt.Fprintf(os.Stderr, "unknown chip %q\n", *chipFlag)
		os.Exit(2)
	}
	place := sim.Clustered
	if *placeFlag == "spreaded" {
		place = sim.Spreaded
	}

	ctx := context.Background()
	cam := experiments.Campaign{Workers: *jobs, Store: store.New(*cacheDir)}
	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "tradeoffs %s: %v\n", name, err)
		os.Exit(1)
	}
	ran := false
	for _, spec := range specs {
		run := func(name string, fn func()) {
			if *exp != "all" && *exp != name {
				return
			}
			ran = true
			fmt.Printf("=== %s (%s) ===\n", name, spec.Name)
			fn()
			fmt.Println()
		}
		run("fig7", func() {
			r, err := experiments.Figure7Context(ctx, cam, spec)
			if err != nil {
				fail("fig7", err)
			}
			r.Render(os.Stdout)
		})
		if *exp == "all" || *exp == "fig11" || *exp == "fig12" {
			grid, err := experiments.EnergyGridContext(ctx, cam, spec, place)
			if err != nil {
				fail("fig11/fig12", err)
			}
			run("fig11", func() { grid.RenderEnergy(os.Stdout) })
			run("fig12", func() { grid.RenderED2P(os.Stdout) })
		}
	}

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig7, fig11, fig12 or all)\n", *exp)
		os.Exit(2)
	}
}
