// Command droopscope reproduces the paper's voltage-droop analysis: the
// per-program droop detection rates in the two magnitude windows of
// Fig. 6, and the droop-class/Vmin correlation of Table II.
//
// Usage:
//
//	droopscope [-experiment fig6|table2|all] [-cycles N]
package main

import (
	"flag"
	"fmt"
	"os"

	"avfs/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment: fig6, table2 or all")
	cycles := flag.Uint64("cycles", 1_000_000_000, "observation window in cycles for fig6")
	flag.Parse()

	ran := false
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		fmt.Printf("=== %s ===\n", name)
		fn()
		fmt.Println()
	}

	run("table2", func() { experiments.TableII().Render(os.Stdout) })
	run("fig6", func() { experiments.Figure6(*cycles).Render(os.Stdout) })

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig6, table2 or all)\n", *exp)
		os.Exit(2)
	}
}
