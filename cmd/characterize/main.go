// Command characterize reproduces the paper's voltage-margins
// characterization: the safe-Vmin study of Fig. 3, the single-/two-core
// variation study of Fig. 4, the unsafe-region pfail curves of Fig. 5, and
// the factor-magnitude summary of Fig. 10, plus the Table I chip
// parameters.
//
// Usage:
//
//	characterize [-experiment fig3|fig4|fig5|fig10|table1|fleet|all]
//	             [-trials N] [-j N] [-cache-dir DIR] [-progress] [-metrics FILE]
//
// -trials reduces the per-level run count from the paper's 1000 for faster
// exploration (the discovered Vmin values are identical in practice: the
// pfail model rises quickly below the safe point).
//
// -j sets the worker-pool width for the characterization campaigns; the
// default is one worker per available CPU, and the results are identical
// for any width. -progress prints periodic campaign progress to stderr,
// and -metrics writes a Prometheus snapshot of the runner telemetry after
// the experiments finish.
//
// -cache-dir enables the on-disk tier of the characterization store:
// datasets are persisted under the directory and reruns with identical
// parameters are served from disk instead of resimulated (identical
// output, see EXPERIMENTS.md). Within one invocation the in-process tier
// memoizes across experiments regardless of the flag.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"avfs/internal/chip"
	"avfs/internal/experiments"
	"avfs/internal/experiments/runner"
	"avfs/internal/telemetry"
	"avfs/internal/telemetry/export"
	"avfs/internal/vmin/store"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment: fig3, fig4, fig5, fig10, table1, fleet or all")
	trials := flag.Int("trials", 0, "runs per voltage level (0 = the paper's 1000)")
	dies := flag.Int("dies", 100, "sampled dies for the fleet study")
	jobs := flag.Int("j", 0, "parallel worker cap (0 = adaptive: min(jobs, cores)) for the characterization campaigns")
	cacheDir := flag.String("cache-dir", "", "persist characterization datasets under this directory (default: in-process memoization only)")
	progress := flag.Bool("progress", false, "print campaign progress to stderr")
	metricsFile := flag.String("metrics", "", "write a Prometheus snapshot of the runner telemetry to this file")
	flag.Parse()

	st := runner.NewStats()
	reg := telemetry.NewRegistry()
	st.Instrument(reg)
	cache := store.New(*cacheDir)
	cache.Instrument(reg)
	cam := experiments.Campaign{Workers: *jobs, Stats: st, Store: cache}
	ctx := context.Background()
	if *progress {
		stop := st.StartProgress(os.Stderr, 2*time.Second)
		defer stop()
	}

	fail := func(name string, err error) {
		fmt.Fprintf(os.Stderr, "characterize %s: %v\n", name, err)
		os.Exit(1)
	}
	ran := false
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		fmt.Printf("=== %s ===\n", name)
		fn()
		fmt.Println()
	}

	run("table1", func() { experiments.TableI().Render(os.Stdout) })
	run("fig3", func() {
		r, err := experiments.Figure3Context(ctx, cam, *trials)
		if err != nil {
			fail("fig3", err)
		}
		r.Render(os.Stdout)
	})
	run("fig4", func() {
		r, err := experiments.Figure4Context(ctx, cam, *trials)
		if err != nil {
			fail("fig4", err)
		}
		r.Render(os.Stdout)
	})
	run("fig5", func() {
		r, err := experiments.Figure5Context(ctx, cam, *trials)
		if err != nil {
			fail("fig5", err)
		}
		r.Render(os.Stdout)
	})
	run("fig10", func() { experiments.Figure10().Render(os.Stdout) })
	run("fleet", func() {
		experiments.FleetStudy(chip.XGene2Spec(), *dies, 1).Render(os.Stdout)
		fmt.Println()
		experiments.FleetStudy(chip.XGene3Spec(), *dies, 1).Render(os.Stdout)
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig3, fig4, fig5, fig10, table1, fleet or all)\n", *exp)
		os.Exit(2)
	}
	if *metricsFile != "" {
		f, err := os.Create(*metricsFile)
		if err != nil {
			fail("metrics", err)
		}
		if err := export.Prometheus(f, reg); err != nil {
			f.Close()
			fail("metrics", err)
		}
		if err := f.Close(); err != nil {
			fail("metrics", err)
		}
		fmt.Fprintln(os.Stderr, "runner telemetry written to", *metricsFile)
	}
}
