// Command characterize reproduces the paper's voltage-margins
// characterization: the safe-Vmin study of Fig. 3, the single-/two-core
// variation study of Fig. 4, the unsafe-region pfail curves of Fig. 5, and
// the factor-magnitude summary of Fig. 10, plus the Table I chip
// parameters.
//
// Usage:
//
//	characterize [-experiment fig3|fig4|fig5|fig10|table1|fleet|all] [-trials N]
//
// -trials reduces the per-level run count from the paper's 1000 for faster
// exploration (the discovered Vmin values are identical in practice: the
// pfail model rises quickly below the safe point).
package main

import (
	"flag"
	"fmt"
	"os"

	"avfs/internal/chip"
	"avfs/internal/experiments"
)

func main() {
	exp := flag.String("experiment", "all", "which experiment: fig3, fig4, fig5, fig10, table1, fleet or all")
	trials := flag.Int("trials", 0, "runs per voltage level (0 = the paper's 1000)")
	dies := flag.Int("dies", 100, "sampled dies for the fleet study")
	flag.Parse()

	ran := false
	run := func(name string, fn func()) {
		if *exp != "all" && *exp != name {
			return
		}
		ran = true
		fmt.Printf("=== %s ===\n", name)
		fn()
		fmt.Println()
	}

	run("table1", func() { experiments.TableI().Render(os.Stdout) })
	run("fig3", func() { experiments.Figure3(*trials).Render(os.Stdout) })
	run("fig4", func() { experiments.Figure4(*trials).Render(os.Stdout) })
	run("fig5", func() { experiments.Figure5(*trials).Render(os.Stdout) })
	run("fig10", func() { experiments.Figure10().Render(os.Stdout) })
	run("fleet", func() {
		experiments.FleetStudy(chip.XGene2Spec(), *dies, 1).Render(os.Stdout)
		fmt.Println()
		experiments.FleetStudy(chip.XGene3Spec(), *dies, 1).Render(os.Stdout)
	})

	if !ran {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want fig3, fig4, fig5, fig10, table1, fleet or all)\n", *exp)
		os.Exit(2)
	}
}
