// Command report regenerates the entire evaluation — every paper table
// and figure plus this repository's ablation, extension and robustness
// studies — into a single markdown document.
//
// Usage:
//
//	report [-quick] [-o REPORT.md]
//
// Without -quick, characterization uses the paper's 1000-run criterion
// and the evaluation replays 1-hour workloads (several minutes of wall
// clock); -quick reduces both for an end-to-end run in under a minute.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"avfs/internal/report"
)

func main() {
	quick := flag.Bool("quick", false, "reduced fidelity for a fast run")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	opts := report.Defaults()
	if *quick {
		opts = report.Quick()
	}

	var w = bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "report:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	defer w.Flush()

	if err := report.Generate(w, opts); err != nil {
		fmt.Fprintln(os.Stderr, "report:", err)
		os.Exit(1)
	}
}
