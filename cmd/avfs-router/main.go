// Command avfs-router is the cluster front door for a fleet of
// avfs-server nodes: a stateless coordinator that places sessions with
// bounded-load rendezvous hashing, proxies per-session requests to the
// node holding them, aggregates fleet-wide listings and metrics, and
// partitions a cluster power budget across nodes proportional to
// demand. Nodes join by heartbeating (avfs-server -router ...); a node
// that stops heartbeating expires from membership after -node-ttl.
//
// Because the router holds no session state — placement is a pure
// function of session identity over the live membership, refined by a
// probe when a session moved — it can restart (or run N-way behind a
// plain TCP load balancer) without losing anything.
//
// Usage:
//
//	avfs-router [-addr :8090] [-budget-watts W] [-node-ttl 10s]
//	            [-load-factor 1.25] [-rebalance-every D]
//
// Flags:
//
//	-addr             listen address (default :8090)
//	-budget-watts     cluster-wide power budget partitioned across nodes
//	                  by demand; 0 disables power capping
//	-node-ttl         heartbeat expiry for silent nodes (default 10s)
//	-load-factor      bounded-load placement factor (default 1.25): a
//	                  node above load-factor × mean sessions is skipped
//	-rebalance-every  periodically migrate sessions back to their
//	                  hash-chosen home nodes (off when 0)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"avfs/internal/cluster"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	budget := flag.Float64("budget-watts", 0, "cluster-wide power budget (0 = uncapped)")
	nodeTTL := flag.Duration("node-ttl", 10*time.Second, "heartbeat expiry for silent nodes")
	loadFactor := flag.Float64("load-factor", 1.25, "bounded-load placement factor")
	rebalanceEvery := flag.Duration("rebalance-every", 0, "periodic rebalance interval (0 = off)")
	flag.Parse()

	rt := cluster.NewRouter(cluster.RouterConfig{
		BudgetW:      *budget,
		HeartbeatTTL: *nodeTTL,
		LoadFactor:   *loadFactor,
	})

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	stopRebalance := make(chan struct{})
	if *rebalanceEvery > 0 {
		go func() {
			t := time.NewTicker(*rebalanceEvery)
			defer t.Stop()
			for {
				select {
				case <-stopRebalance:
					return
				case <-t.C:
					report := rt.Rebalance(context.Background())
					if len(report.Moved) > 0 || len(report.Errors) > 0 {
						fmt.Fprintf(os.Stderr, "avfs-router: rebalance moved %d of %d sessions (%d errors)\n",
							len(report.Moved), report.Sessions, len(report.Errors))
					}
				}
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "avfs-router: listening on %s (budget %.0f W, node ttl %v)\n",
		*addr, *budget, *nodeTTL)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintf(os.Stderr, "avfs-router: %v\n", err)
			os.Exit(1)
		}
	case sig := <-sigCh:
		fmt.Fprintf(os.Stderr, "avfs-router: %v: shutting down\n", sig)
	}
	close(stopRebalance)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	_ = srv.Shutdown(ctx)
}
