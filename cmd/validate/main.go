// Command validate checks the reproduction against every quantitative
// claim of the paper and prints the pass/fail dashboard. It exits non-zero
// if any claim fails.
//
// Usage:
//
//	validate [-fast]
//
// -fast uses reduced characterization trials and a 10-minute evaluation
// workload (seconds of runtime); without it, claims are verified at paper
// fidelity (1000-run characterization, 1-hour workloads — minutes).
package main

import (
	"flag"
	"os"

	"avfs/internal/claims"
)

func main() {
	fast := flag.Bool("fast", false, "reduced fidelity (seconds instead of minutes)")
	flag.Parse()

	f := claims.Fidelity{Trials: 0, EvalSeconds: 3600, Seed: 42}
	if *fast {
		f = claims.Fast()
	}
	results := claims.Verify(f)
	if failed := claims.Render(os.Stdout, results); failed > 0 {
		os.Exit(1)
	}
}
