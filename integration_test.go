package avfs

import (
	"strconv"
	"testing"

	"avfs/internal/chip"
	"avfs/internal/daemon"
	"avfs/internal/perfmon"
	"avfs/internal/sim"
	"avfs/internal/sysfs"
	"avfs/internal/wlgen"
	"avfs/internal/workload"
)

// Integration tests drive cross-module flows end to end: the daemon
// controlling a machine observed through sysfs and PMU counters, the
// full evaluation pipeline, and consistency between the layers.

// TestSysfsObservesDaemonActions checks that everything the daemon does is
// visible through the emulated kernel interfaces, exactly as an operator
// tool on the real server would see it.
func TestSysfsObservesDaemonActions(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	fs := sysfs.New(m)
	d := daemon.New(m, daemon.DefaultConfig())
	d.Attach()

	cg := m.MustSubmit(workload.MustByName("CG"), 4)
	m.RunFor(2)
	if d.ClassOf(cg) != daemon.MemoryIntensive {
		t.Fatal("precondition: CG memory-intensive")
	}

	// The daemon's voltage decision is visible on the SLIMpro node.
	vStr, err := fs.Read("slimpro/pcp_voltage_mv")
	if err != nil {
		t.Fatal(err)
	}
	v, _ := strconv.Atoi(vStr)
	if chip.Millivolts(v) != m.Chip.Voltage() {
		t.Errorf("sysfs voltage %v != chip voltage %v", v, m.Chip.Voltage())
	}
	if v >= int(m.Spec.NominalMV) {
		t.Errorf("daemon left voltage at %vmV; expected an undervolt", v)
	}

	// The memory PMDs' reduced frequency is visible on cpufreq nodes.
	pmd := m.Spec.PMDOf(cg.Cores()[0])
	fStr, err := fs.Read("cpu/cpufreq/policy" + strconv.Itoa(int(pmd)) + "/scaling_cur_freq")
	if err != nil {
		t.Fatal(err)
	}
	khz, _ := strconv.Atoi(fStr)
	if chip.MHz(khz/1000) != m.Spec.HalfFreq() {
		t.Errorf("sysfs frequency %d kHz, want half speed", khz)
	}
}

// TestExternalClassifierAgreesWithDaemon runs an independent observer using
// the same kernel-module protocol as the daemon and checks both reach the
// same classification for every running process.
func TestExternalClassifierAgreesWithDaemon(t *testing.T) {
	m := sim.New(chip.XGene3Spec())
	d := daemon.New(m, daemon.DefaultConfig())
	d.Attach()
	pmu := &perfmon.PMU{M: m}
	sampler := perfmon.DeltaSampler{PMU: pmu}

	procs := []*sim.Process{
		m.MustSubmit(workload.MustByName("lbm"), 1),
		m.MustSubmit(workload.MustByName("povray"), 1),
		m.MustSubmit(workload.MustByName("milc"), 1),
		m.MustSubmit(workload.MustByName("sjeng"), 1),
	}
	m.RunFor(2) // placement settles, daemon classifies

	samples := make(map[*sim.Process]*perfmon.Sample)
	for _, p := range procs {
		samples[p] = sampler.Open(p.Cores())
	}
	m.RunFor(1)
	for _, p := range procs {
		meas := samples[p].Close()
		external := meas.L3CPer1M(len(p.Cores())) >= workload.MemoryIntensiveThreshold
		daemonSays := d.ClassOf(p) == daemon.MemoryIntensive
		if external != daemonSays {
			t.Errorf("%s: external classifier %v, daemon %v", p.Bench.Name, external, daemonSays)
		}
	}
}

// TestFullPipelineConsistency cross-checks the evaluation pipeline's
// outputs against the machine-level ground truth on a small workload.
func TestFullPipelineConsistency(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run in -short mode")
	}
	spec := chip.XGene3Spec()
	wl := wlgen.Generate(spec, wlgen.Config{Duration: 300}, 9)
	res, err := Evaluate(XGene3, wl, Optimal)
	if err != nil {
		t.Fatal(err)
	}
	// The power trace's mean must agree with the meter-derived average.
	if m := res.Power.Mean(); m < res.AvgPowerW*0.9 || m > res.AvgPowerW*1.1 {
		t.Errorf("power trace mean %.2fW vs meter average %.2fW", m, res.AvgPowerW)
	}
	// Energy must equal avg power × time.
	if e := res.AvgPowerW * res.TimeSec; e < res.EnergyJ*0.999 || e > res.EnergyJ*1.001 {
		t.Errorf("energy %.1fJ inconsistent with %.2fW × %.0fs", res.EnergyJ, res.AvgPowerW, res.TimeSec)
	}
	// ED2P definition.
	if res.ED2P != res.EnergyJ*res.TimeSec*res.TimeSec {
		t.Error("ED2P definition violated")
	}
	// The load trace peaks within the core count.
	if res.Load.Max() > float64(spec.Cores) {
		t.Errorf("load peak %.0f exceeds %d cores", res.Load.Max(), spec.Cores)
	}
}

// TestDaemonOnAgedMachineEndToEnd exercises the aging extension through
// the facade: a 5-year-old machine with an age-aware guard stays safe.
func TestDaemonOnAgedMachineEndToEnd(t *testing.T) {
	m := NewMachine(XGene2)
	m.SetVminDrift(16) // ≈ 5 years on the X-Gene 2 aging model
	cfg := OptimalDaemonConfig()
	cfg.GuardMV = 16 + Spec(XGene2).VoltageStep
	d := NewDaemon(m, cfg)
	d.Attach()
	for _, name := range []string{"lbm", "namd", "CG"} {
		n := 1
		if Benchmark(name).Parallel {
			n = 4
		}
		m.MustSubmit(Benchmark(name), n)
	}
	if err := m.RunUntilIdle(3600); err != nil {
		t.Fatal(err)
	}
	if n := len(m.Emergencies()); n != 0 {
		t.Fatalf("%d emergencies on the aged machine despite the age-aware guard", n)
	}
}
